"""Nonlinear application — the §8 future-work direction, implemented.

Solves the semilinear elliptic problem

    -Δu + c·u³ = f     on the unit square, Dirichlet boundary,

discretized on the same grid as §6, so the system is ``A u + c u∘u∘u = b``
with ``A`` the 5-point M-matrix.  The monotone nonlinearity (``c ≥ 0``)
keeps the block fixed-point a contraction, so the *asynchronous* execution
converges exactly as in the linear case — the paper's claim that "the class
of problems that can be implemented with this platform is large and
features, for example, nonlinear applications".

Each asynchronous iteration solves the local nonlinear block system with a
damped Newton method; every Newton step is an SPD solve (Jacobian
``A_loc + 3c·diag(u²)``) done by the same from-scratch CG.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.numerics.cg import conjugate_gradient, csr_matvec_into
from repro.numerics.poisson import poisson_matrix
from repro.numerics.residual import update_distance
from repro.numerics.splitting import shared_decomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

__all__ = ["NonlinearPoissonTask", "make_nonlinear_app", "nonlinear_reference"]


def _manufactured_system(n: int, c: float):
    """``A, b, u*`` such that ``A u* + c u*³ = b`` exactly (discretely)."""
    A = poisson_matrix(n, scaled=True)
    h = 1.0 / (n + 1)
    xs = (np.arange(n) + 1) * h
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    u_star = (np.sin(np.pi * X) * np.sin(np.pi * Y)).reshape(n * n)
    b = A @ u_star + c * u_star**3
    return A, b, u_star


def nonlinear_reference(n: int, c: float, tol: float = 1e-12,
                        max_newton: int = 50) -> np.ndarray:
    """Sequential global Newton solve, for validation."""
    from scipy.sparse.linalg import spsolve

    A, b, _ = _manufactured_system(n, c)
    u = np.zeros(n * n)
    for _ in range(max_newton):
        residual = A @ u + c * u**3 - b
        if np.linalg.norm(residual) <= tol * max(np.linalg.norm(b), 1e-300):
            break
        J = (A + sp.diags(3.0 * c * u**2)).tocsc()
        u = u - spsolve(J, residual)
    return u


class NonlinearPoissonTask(Task):
    """One strip of the semilinear problem.

    ``ctx.params``: ``n`` (grid size), ``c`` (nonlinearity strength,
    default 1.0), ``newton_iters`` (inner Newton steps per asynchronous
    iteration, default 3), ``inner_tol`` (CG tolerance, default 1e-10).
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        self.c = float(ctx.params.get("c", 1.0))
        if self.c < 0:
            raise ValueError("c must be >= 0 (monotone nonlinearity)")
        self.newton_iters = int(ctx.params.get("newton_iters", 3))
        if self.newton_iters < 1:
            raise ValueError("newton_iters must be >= 1")
        self.inner_tol = float(ctx.params.get("inner_tol", 1e-10))
        self.use_cache = bool(ctx.params.get("use_cache", True))
        overlap = int(ctx.params.get("overlap", 0))
        c = self.c

        def build_system():
            A, b, _ = _manufactured_system(n, c)
            return A, b

        decomp = shared_decomposition(
            ("nonlinear-poisson", n, c),
            build_system,
            nblocks=ctx.num_tasks,
            line=n,
            overlap=overlap,
            enabled=self.use_cache,
        )
        self.blk = decomp.blocks[ctx.task_id]
        self.n = n
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)
        if self.use_cache:
            self._rhs = np.empty(self.blk.n_ext)
            self._old_owned = np.empty(self.blk.n_owned)
            self._dist_work = np.empty(self.blk.n_owned)

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = self.guard_payload(src_task, values)

        if self.use_cache:
            if self.ext.size:
                csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
                np.subtract(blk.b_local, self._rhs, out=self._rhs)
                rhs = self._rhs
            else:
                rhs = blk.b_local
            np.copyto(self._old_owned, blk.owned_of(self.x))
            old_owned = self._old_owned
        else:
            rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
            old_owned = blk.owned_of(self.x).copy()
        x = self.x.copy()
        flops = 2.0 * blk.B_coupling.nnz
        for _ in range(self.newton_iters):
            residual = blk.A_local @ x + self.c * x**3 - rhs
            jacobian = blk.A_local + sp.diags(3.0 * self.c * x**2)
            step = conjugate_gradient(jacobian.tocsr(), residual,
                                      tol=self.inner_tol)
            x = x - step.x
            flops += step.flops + 4.0 * blk.n_ext + 2.0 * blk.A_local.nnz
        self.x = x
        distance = update_distance(
            blk.owned_of(self.x), old_owned,
            work=self._dist_work if self.use_cache else None,
        )
        outgoing = blk.outgoing_payloads(self.x)
        return IterationStep(flops=flops, outgoing=outgoing,
                             local_distance=distance)

    def solution_fragment(self):
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_nonlinear_app(
    app_id: str,
    n: int,
    num_tasks: int,
    c: float = 1.0,
    overlap: int = 0,
    newton_iters: int = 3,
    use_cache: bool = True,
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=NonlinearPoissonTask,
        num_tasks=num_tasks,
        params={"n": n, "c": c, "overlap": overlap,
                "newton_iters": newton_iters, "use_cache": use_cache},
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
