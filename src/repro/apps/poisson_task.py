"""The paper's application: asynchronous block-Jacobi for 2-D Poisson (§6).

Every task deterministically rebuilds the *global* problem from the
application parameters and restricts it to its strip — that is how a
replacement Daemon reconstructs the sub-problem after a failure without any
state transfer beyond the Backup.  (The paper ships Java byte-code plus
arguments the same way; the matrix is never sent over the network.)

Per asynchronous iteration the task:

1. folds the freshest neighbour boundary lines into its external-value
   vector (stale values persist when nothing arrived — chaotic relaxation);
2. solves its extended local system with warm-started CG;
3. sends one grid line (``n`` components) to each neighbour — constant
   exchange volume regardless of the overlap;
4. reports the max-norm relative distance between successive owned iterates.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.numerics.cg import conjugate_gradient
from repro.numerics.poisson import Poisson2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import BlockDecomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

__all__ = ["PoissonTask", "make_poisson_app"]


class PoissonTask(Task):
    """One strip of the Poisson problem.

    ``ctx.params``:

    * ``n`` — grid size (problem size is ``n²``, as in the paper);
    * ``overlap`` — overlapped grid lines per side (default 0);
    * ``inner_tol`` — relative tolerance of the inner CG (default 1e-10);
    * ``inner_max_iter`` — inner iteration cap (default: none);
    * ``warm_start`` — start the inner CG from the previous local solution
      (default False).  Classical block-Jacobi solves each local system
      afresh, so every outer iteration costs a full inner solve — that
      constant per-iteration computing time is what the paper's ratio (4)
      (compute-per-iteration / communication-per-iteration) is built on.
      Warm-starting makes stale-data iterations nearly free; it is exposed
      as an optimization ablation, not the reproduction default;
    * ``problem`` — ``"manufactured"`` (default) or ``"plate"``.
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        overlap = int(ctx.params.get("overlap", 0))
        self.inner_tol = float(ctx.params.get("inner_tol", 1e-10))
        self.inner_max_iter = ctx.params.get("inner_max_iter")
        self.warm_start = bool(ctx.params.get("warm_start", False))
        problem = ctx.params.get("problem", "manufactured")
        if problem == "manufactured":
            prob = Poisson2D.manufactured(n)
        elif problem == "plate":
            prob = Poisson2D.heat_plate(n)
        else:
            raise ValueError(f"unknown problem {problem!r}")
        decomp = BlockDecomposition(
            prob.A, prob.b, nblocks=ctx.num_tasks, line=n, overlap=overlap
        )
        self.blk = decomp.blocks[ctx.task_id]
        self.n = n
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)

    # -- state ---------------------------------------------------------------

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    # -- iteration ------------------------------------------------------------

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue  # not one of our suppliers: drop
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = values

        rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
        old_owned = blk.owned_of(self.x).copy()
        result = conjugate_gradient(
            blk.A_local,
            rhs,
            x0=self.x if self.warm_start else None,
            tol=self.inner_tol,
            max_iter=self.inner_max_iter,
        )
        self.x = result.x
        distance = update_distance(blk.owned_of(self.x), old_owned)

        outgoing = {
            nb: blk.values_to_send(self.x, nb) for nb in blk.send_map
        }
        # charge the coupling matvec + rhs assembly on top of the CG cost
        flops = result.flops + 2.0 * blk.B_coupling.nnz + 2.0 * blk.n_ext
        return IterationStep(
            flops=flops,
            outgoing=outgoing,
            local_distance=distance,
            info={"inner_iterations": result.iterations},
        )

    def solution_fragment(self) -> tuple[int, np.ndarray]:
        """(global offset, owned values) — the harness stitches these."""
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_poisson_app(
    app_id: str,
    n: int,
    num_tasks: int,
    overlap: int = 0,
    problem: str = "manufactured",
    inner_tol: float = 1e-10,
    inner_max_iter: int | None = None,
    warm_start: bool = False,
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    """Convenience AppSpec builder for the Poisson application."""
    return AppSpec(
        app_id=app_id,
        task_factory=PoissonTask,
        num_tasks=num_tasks,
        params={
            "n": n,
            "overlap": overlap,
            "problem": problem,
            "inner_tol": inner_tol,
            "inner_max_iter": inner_max_iter,
            "warm_start": warm_start,
        },
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
