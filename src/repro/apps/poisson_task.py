"""The paper's application: asynchronous block-Jacobi for 2-D Poisson (§6).

Every task deterministically rebuilds the *global* problem from the
application parameters and restricts it to its strip — that is how a
replacement Daemon reconstructs the sub-problem after a failure without any
state transfer beyond the Backup.  (The paper ships Java byte-code plus
arguments the same way; the matrix is never sent over the network.)
Because the build is deterministic, P tasks and R recoveries share one
memoized decomposition (:func:`repro.numerics.shared_decomposition`) unless
``use_cache=False`` requests the original per-task rebuild.

Per asynchronous iteration the task:

1. folds the freshest neighbour boundary lines into its external-value
   vector (stale values persist when nothing arrived — chaotic relaxation);
2. solves its extended local system with warm-started CG;
3. sends one grid line (``n`` components) to each neighbour — constant
   exchange volume regardless of the overlap;
4. reports the max-norm relative distance between successive owned iterates.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.numerics.cg import block_operator, conjugate_gradient, csr_matvec_into
from repro.numerics.poisson import Poisson2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import shared_decomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, StepPlan, Task, TaskContext

__all__ = ["PoissonTask", "make_poisson_app"]


class PoissonTask(Task):
    """One strip of the Poisson problem.

    ``ctx.params``:

    * ``n`` — grid size (problem size is ``n²``, as in the paper);
    * ``overlap`` — overlapped grid lines per side (default 0);
    * ``inner_tol`` — relative tolerance of the inner CG (default 1e-10);
    * ``inner_max_iter`` — inner iteration cap (default: none);
    * ``warm_start`` — start the inner CG from the previous local solution
      (default False).  Classical block-Jacobi solves each local system
      afresh, so every outer iteration costs a full inner solve — that
      constant per-iteration computing time is what the paper's ratio (4)
      (compute-per-iteration / communication-per-iteration) is built on.
      Warm-starting makes stale-data iterations nearly free; it is exposed
      as an optimization ablation, not the reproduction default;
    * ``problem`` — ``"manufactured"`` (default) or ``"plate"``;
    * ``use_cache`` — share the decomposition/operator caches (default
      True).  False forces the original per-task legacy rebuild and the
      allocating solver path; results are bitwise identical either way;
    * ``inner_solver`` — ``"cg"`` (default) or ``"direct"``: the cached-LU
      path for small blocks (requires ``use_cache``; falls back to CG for
      blocks above ``direct_max_rows``, default 50000).  A different
      numerical method — changes iteration counts and simulated time, so it
      is an explicit opt-in, never part of the reproduction defaults.
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        overlap = int(ctx.params.get("overlap", 0))
        self.inner_tol = float(ctx.params.get("inner_tol", 1e-10))
        self.inner_max_iter = ctx.params.get("inner_max_iter")
        self.warm_start = bool(ctx.params.get("warm_start", False))
        self.use_cache = bool(ctx.params.get("use_cache", True))
        self.inner_solver = str(ctx.params.get("inner_solver", "cg"))
        if self.inner_solver not in ("cg", "direct"):
            raise ValueError(f"unknown inner_solver {self.inner_solver!r}")
        self.direct_max_rows = int(ctx.params.get("direct_max_rows", 50_000))
        problem = ctx.params.get("problem", "manufactured")
        if problem == "manufactured":
            build_problem = Poisson2D.manufactured
        elif problem == "plate":
            build_problem = Poisson2D.heat_plate
        else:
            raise ValueError(f"unknown problem {problem!r}")

        def build_system():
            prob = build_problem(n)
            return prob.A, prob.b

        decomp = shared_decomposition(
            ("poisson", problem, n),
            build_system,
            nblocks=ctx.num_tasks,
            line=n,
            overlap=overlap,
            enabled=self.use_cache,
        )
        self.blk = decomp.blocks[ctx.task_id]
        self.n = n
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)
        if self.use_cache:
            self._op = block_operator(self.blk)
            self._rhs = np.empty(self.blk.n_ext)
            self._old_owned = np.empty(self.blk.n_owned)
            self._dist_work = np.empty(self.blk.n_owned)
        else:
            self._op = None

    # -- state ---------------------------------------------------------------

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    # -- iteration ------------------------------------------------------------

    def _fold_inbox(self, inbox: dict[int, Any]) -> None:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue  # not one of our suppliers: drop
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = self.guard_payload(src_task, values)

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        self._fold_inbox(inbox)

        op = self._op
        if op is not None:
            # Cached path: same arithmetic into preallocated buffers.
            if self.ext.size:
                csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
                np.subtract(blk.b_local, self._rhs, out=self._rhs)
                rhs = self._rhs
            else:
                rhs = blk.b_local  # read-only; the solver never writes b
            np.copyto(self._old_owned, blk.owned_of(self.x))
            old_owned = self._old_owned
            if self.inner_solver == "direct" and blk.n_ext <= self.direct_max_rows:
                result = op.solve_direct(rhs, tol=self.inner_tol)
            else:
                result = op.solve(
                    rhs,
                    x0=self.x if self.warm_start else None,
                    tol=self.inner_tol,
                    max_iter=self.inner_max_iter,
                )
            self.x = result.x
            distance = update_distance(blk.owned_of(self.x), old_owned,
                                       work=self._dist_work)
        else:
            # Legacy (cache-bypass) path: the original allocating code.
            rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
            old_owned = blk.owned_of(self.x).copy()
            result = conjugate_gradient(
                blk.A_local,
                rhs,
                x0=self.x if self.warm_start else None,
                tol=self.inner_tol,
                max_iter=self.inner_max_iter,
            )
            self.x = result.x
            distance = update_distance(blk.owned_of(self.x), old_owned)

        outgoing = blk.outgoing_payloads(self.x)
        # charge the coupling matvec + rhs assembly on top of the CG cost
        flops = result.flops + 2.0 * blk.B_coupling.nnz + 2.0 * blk.n_ext
        return IterationStep(
            flops=flops,
            outgoing=outgoing,
            local_distance=distance,
            info={"inner_iterations": result.iterations},
        )

    # -- compute-plane protocol ----------------------------------------------

    def begin_step(self, inbox: dict[int, Any]) -> StepPlan | None:
        """The pre-solve half of :meth:`iterate`, for the compute plane.

        Identical inbox fold, rhs assembly and old-iterate snapshot; the
        inner solve itself is described by the returned plan.  The
        cache-bypass (``use_cache=False``) configuration keeps the
        monolithic path — it exists to exercise the legacy code.
        """
        if self._op is None:
            return None
        blk = self.blk
        self._fold_inbox(inbox)
        if self.ext.size:
            csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
            np.subtract(blk.b_local, self._rhs, out=self._rhs)
            rhs = self._rhs
        else:
            rhs = blk.b_local  # read-only; the solver never writes b
        np.copyto(self._old_owned, blk.owned_of(self.x))
        extra = 2.0 * blk.B_coupling.nnz + 2.0 * blk.n_ext
        if self.inner_solver == "direct" and blk.n_ext <= self.direct_max_rows:
            return StepPlan(solver="direct", operator=self._op, rhs=rhs,
                            tol=self.inner_tol, flops_extra=extra)
        return StepPlan(solver="cg", operator=self._op, rhs=rhs,
                        x0=self.x if self.warm_start else None,
                        tol=self.inner_tol, max_iter=self.inner_max_iter,
                        flops_extra=extra)

    def finish_step(self, plan: StepPlan, result: Any) -> IterationStep:
        blk = self.blk
        self.x = result.x
        distance = update_distance(blk.owned_of(self.x), self._old_owned,
                                   work=self._dist_work)
        return IterationStep(
            flops=result.flops + plan.flops_extra,
            outgoing=blk.outgoing_payloads(self.x),
            local_distance=distance,
            info={"inner_iterations": result.iterations},
        )

    def solution_fragment(self) -> tuple[int, np.ndarray]:
        """(global offset, owned values) — the harness stitches these."""
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_poisson_app(
    app_id: str,
    n: int,
    num_tasks: int,
    overlap: int = 0,
    problem: str = "manufactured",
    inner_tol: float = 1e-10,
    inner_max_iter: int | None = None,
    warm_start: bool = False,
    use_cache: bool = True,
    inner_solver: str = "cg",
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
    reject_corruption: bool = False,
) -> AppSpec:
    """Convenience AppSpec builder for the Poisson application."""
    params = {
        "n": n,
        "overlap": overlap,
        "problem": problem,
        "inner_tol": inner_tol,
        "inner_max_iter": inner_max_iter,
        "warm_start": warm_start,
        "use_cache": use_cache,
        "inner_solver": inner_solver,
    }
    if reject_corruption:
        # only added when on: params ride inside every assign_task RMI
        # message, and a new key would change measured envelope sizes (and
        # with them the DES timeline) of runs that never asked for it
        params["reject_corruption"] = True
    return AppSpec(
        app_id=app_id,
        task_factory=PoissonTask,
        num_tasks=num_tasks,
        params=params,
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
