"""``repro.apps`` — SPMD Task implementations runnable on the runtime.

* :class:`PoissonTask` — the paper's application (§6): block-Jacobi
  multisplitting of the 2-D Poisson system with an inner sparse Conjugate
  Gradient and component overlapping.
* :class:`JacobiTask` — point-Jacobi sweeps on the local strip: the
  cheapest-iteration contrast app (large communication/compute ratio).
* :class:`HeatTask` — pseudo-transient continuation (explicit local time
  marching of the heat equation to its steady state): the "nonstationary
  PDE" direction from the paper's future work (§8), async-compatible
  because each local step is a contraction.
* :class:`NonlinearPoissonTask` — the semilinear problem
  ``-Δu + c·u³ = f`` with inner Newton/CG: the "nonlinear applications"
  direction from §8.
"""

from repro.apps.poisson_task import PoissonTask, make_poisson_app
from repro.apps.jacobi_task import JacobiTask, make_jacobi_app
from repro.apps.heat_task import HeatTask, make_heat_app
from repro.apps.nonlinear_task import (
    NonlinearPoissonTask,
    make_nonlinear_app,
    nonlinear_reference,
)
from repro.apps.convdiff_task import ConvectionDiffusionTask, make_convdiff_app

__all__ = [
    "ConvectionDiffusionTask",
    "make_convdiff_app",
    "PoissonTask",
    "make_poisson_app",
    "JacobiTask",
    "make_jacobi_app",
    "HeatTask",
    "make_heat_app",
    "NonlinearPoissonTask",
    "make_nonlinear_app",
    "nonlinear_reference",
]
