"""Pseudo-transient heat equation: the "nonstationary PDE" future-work app.

Marches ``u_t = Δu + f`` explicitly in local pseudo-time until the steady
state (the Poisson solution) is reached::

    u ← u + dt (b - A u)    restricted to the local strip

with ``dt`` inside the explicit stability limit (``dt ≤ θ / max_i A_ii``,
θ < 1).  Each local step is a contraction with a nonnegative iteration
matrix ``I - dt·A`` (row sums < 1), so the chaotic asynchronous execution
converges — demonstrating the runtime is not tied to the block-CG solver.
``steps_per_iteration`` explicit steps are fused into one asynchronous
iteration to tune the compute/communication ratio.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.numerics.cg import block_operator, csr_matvec_into
from repro.numerics.poisson import Poisson2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import shared_decomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

__all__ = ["HeatTask", "make_heat_app"]


class HeatTask(Task):
    """One strip of the pseudo-transient heat march.

    ``ctx.params``: ``n``, ``theta`` (fraction of the stability limit,
    default 0.9), ``steps_per_iteration`` (default 10), ``problem``,
    ``use_cache`` (share the decomposition across tasks/recoveries,
    default True; bitwise-neutral).
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        theta = float(ctx.params.get("theta", 0.9))
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.steps = int(ctx.params.get("steps_per_iteration", 10))
        if self.steps < 1:
            raise ValueError("steps_per_iteration must be >= 1")
        self.use_cache = bool(ctx.params.get("use_cache", True))
        problem = ctx.params.get("problem", "plate")
        build_problem = (
            Poisson2D.manufactured if problem == "manufactured"
            else Poisson2D.heat_plate
        )

        def build_system():
            prob = build_problem(n)
            return prob.A, prob.b

        decomp = shared_decomposition(
            ("heat", problem, n),
            build_system,
            nblocks=ctx.num_tasks,
            line=n,
            enabled=self.use_cache,
        )
        self.blk = decomp.blocks[ctx.task_id]
        # explicit stability: dt * max diag < 1  (diag = 4/h² everywhere)
        self.dt = theta / float(decomp.A.diagonal().max())
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)
        if self.use_cache:
            self._op = block_operator(self.blk)
            self._rhs = np.empty(self.blk.n_ext)
            self._step_buf = np.empty(self.blk.n_ext)
            self._old_owned = np.empty(self.blk.n_owned)
            self._dist_work = np.empty(self.blk.n_owned)
        else:
            self._op = None

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = self.guard_payload(src_task, values)

        op = self._op
        if op is not None:
            if self.ext.size:
                csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
                np.subtract(blk.b_local, self._rhs, out=self._rhs)
                rhs = self._rhs
            else:
                rhs = blk.b_local
            np.copyto(self._old_owned, blk.owned_of(self.x))
            old_owned = self._old_owned
            buf = self._step_buf
            x = self.x
            for _ in range(self.steps):
                # x + dt*(rhs - A@x), elementwise-identical via the buffer
                op.matvec(x, buf)
                np.subtract(rhs, buf, out=buf)
                np.multiply(buf, self.dt, out=buf)
                x = x + buf
            self.x = x
            distance = update_distance(blk.owned_of(self.x), old_owned,
                                       work=self._dist_work)
        else:
            rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
            old_owned = blk.owned_of(self.x).copy()
            x = self.x
            for _ in range(self.steps):
                x = x + self.dt * (rhs - blk.A_local @ x)
            self.x = x
            distance = update_distance(blk.owned_of(self.x), old_owned)
        outgoing = blk.outgoing_payloads(self.x)
        flops = self.steps * (2.0 * blk.A_local.nnz + 4.0 * blk.n_ext)
        return IterationStep(flops=flops, outgoing=outgoing, local_distance=distance)

    def solution_fragment(self):
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_heat_app(
    app_id: str,
    n: int,
    num_tasks: int,
    theta: float = 0.9,
    steps_per_iteration: int = 10,
    problem: str = "plate",
    use_cache: bool = True,
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=HeatTask,
        num_tasks=num_tasks,
        params={
            "n": n,
            "theta": theta,
            "steps_per_iteration": steps_per_iteration,
            "problem": problem,
            "use_cache": use_cache,
        },
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
