"""Pseudo-transient heat equation: the "nonstationary PDE" future-work app.

Marches ``u_t = Δu + f`` explicitly in local pseudo-time until the steady
state (the Poisson solution) is reached::

    u ← u + dt (b - A u)    restricted to the local strip

with ``dt`` inside the explicit stability limit (``dt ≤ θ / max_i A_ii``,
θ < 1).  Each local step is a contraction with a nonnegative iteration
matrix ``I - dt·A`` (row sums < 1), so the chaotic asynchronous execution
converges — demonstrating the runtime is not tied to the block-CG solver.
``steps_per_iteration`` explicit steps are fused into one asynchronous
iteration to tune the compute/communication ratio.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.numerics.poisson import Poisson2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import BlockDecomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

__all__ = ["HeatTask", "make_heat_app"]


class HeatTask(Task):
    """One strip of the pseudo-transient heat march.

    ``ctx.params``: ``n``, ``theta`` (fraction of the stability limit,
    default 0.9), ``steps_per_iteration`` (default 10), ``problem``.
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        theta = float(ctx.params.get("theta", 0.9))
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.steps = int(ctx.params.get("steps_per_iteration", 10))
        if self.steps < 1:
            raise ValueError("steps_per_iteration must be >= 1")
        problem = ctx.params.get("problem", "plate")
        prob = (
            Poisson2D.manufactured(n) if problem == "manufactured"
            else Poisson2D.heat_plate(n)
        )
        decomp = BlockDecomposition(prob.A, prob.b, nblocks=ctx.num_tasks, line=n)
        self.blk = decomp.blocks[ctx.task_id]
        # explicit stability: dt * max diag < 1  (diag = 4/h² everywhere)
        self.dt = theta / float(prob.A.diagonal().max())
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = values

        rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
        old_owned = blk.owned_of(self.x).copy()
        x = self.x
        for _ in range(self.steps):
            x = x + self.dt * (rhs - blk.A_local @ x)
        self.x = x
        distance = update_distance(blk.owned_of(self.x), old_owned)
        outgoing = {nb: blk.values_to_send(self.x, nb) for nb in blk.send_map}
        flops = self.steps * (2.0 * blk.A_local.nnz + 4.0 * blk.n_ext)
        return IterationStep(flops=flops, outgoing=outgoing, local_distance=distance)

    def solution_fragment(self):
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_heat_app(
    app_id: str,
    n: int,
    num_tasks: int,
    theta: float = 0.9,
    steps_per_iteration: int = 10,
    problem: str = "plate",
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=HeatTask,
        num_tasks=num_tasks,
        params={
            "n": n,
            "theta": theta,
            "steps_per_iteration": steps_per_iteration,
            "problem": problem,
        },
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
