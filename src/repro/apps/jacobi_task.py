"""Point-Jacobi strips: the cheap-iteration contrast application.

Each asynchronous iteration performs ``sweeps`` point-Jacobi relaxations on
the local strip instead of an exact block solve.  Compute per iteration is
tiny, so the compute/communication ratio — the paper's ratio (4) — is small:
this app maximises the "useless iteration" phenomenon and stresses the
messaging layer.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.numerics.cg import csr_matvec_into
from repro.numerics.poisson import Poisson2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import shared_decomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

__all__ = ["JacobiTask", "make_jacobi_app"]


class JacobiTask(Task):
    """One strip relaxed with point-Jacobi sweeps.

    ``ctx.params``: ``n`` (grid size), ``sweeps`` (relaxations per
    asynchronous iteration, default 1), ``problem``, ``use_cache``
    (share decomposition and sweep operator, default True;
    bitwise-neutral).
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        self.sweeps = int(ctx.params.get("sweeps", 1))
        if self.sweeps < 1:
            raise ValueError("sweeps must be >= 1")
        self.use_cache = bool(ctx.params.get("use_cache", True))
        problem = ctx.params.get("problem", "manufactured")
        build_problem = (
            Poisson2D.manufactured if problem == "manufactured"
            else Poisson2D.heat_plate
        )

        def build_system():
            prob = build_problem(n)
            return prob.A, prob.b

        decomp = shared_decomposition(
            ("jacobi", problem, n),
            build_system,
            nblocks=ctx.num_tasks,
            line=n,
            enabled=self.use_cache,
        )
        self.blk = decomp.blocks[ctx.task_id]
        blk = self.blk
        cached = blk.op_cache.get("jacobi") if self.use_cache else None
        if cached is not None:
            self.inv_diag, self.R = cached
        else:
            diag = blk.A_local.diagonal()
            if (diag == 0).any():
                raise ValueError("Jacobi needs a nonzero diagonal")
            self.inv_diag = 1.0 / diag
            #: local matrix without its diagonal (for x_new = D^{-1}(b - R x))
            self.R = (blk.A_local - sp.diags(diag)).tocsr()
            if self.use_cache:
                self.inv_diag.flags.writeable = False
                self.R.data.flags.writeable = False
                blk.op_cache["jacobi"] = (self.inv_diag, self.R)
        self.x = np.zeros(blk.n_ext)
        self.ext = np.zeros(blk.ext_cols.size)
        if self.use_cache:
            self._rhs = np.empty(blk.n_ext)
            self._sweep_buf = np.empty(blk.n_ext)
            self._old_owned = np.empty(blk.n_owned)
            self._dist_work = np.empty(blk.n_owned)

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = self.guard_payload(src_task, values)

        if self.use_cache:
            if self.ext.size:
                csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
                np.subtract(blk.b_local, self._rhs, out=self._rhs)
                rhs = self._rhs
            else:
                rhs = blk.b_local
            np.copyto(self._old_owned, blk.owned_of(self.x))
            old_owned = self._old_owned
            buf = self._sweep_buf
            x = self.x
            for _ in range(self.sweeps):
                # inv_diag * (rhs - R@x), elementwise-identical via the buffer
                csr_matvec_into(self.R, x, buf)
                np.subtract(rhs, buf, out=buf)
                x = self.inv_diag * buf
            self.x = x
            distance = update_distance(blk.owned_of(self.x), old_owned,
                                       work=self._dist_work)
        else:
            rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
            old_owned = blk.owned_of(self.x).copy()
            x = self.x
            for _ in range(self.sweeps):
                x = self.inv_diag * (rhs - self.R @ x)
            self.x = x
            distance = update_distance(blk.owned_of(self.x), old_owned)
        outgoing = blk.outgoing_payloads(self.x)
        flops = self.sweeps * (2.0 * self.R.nnz + 3.0 * blk.n_ext) + 2.0 * blk.B_coupling.nnz
        return IterationStep(flops=flops, outgoing=outgoing, local_distance=distance)

    def solution_fragment(self):
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_jacobi_app(
    app_id: str,
    n: int,
    num_tasks: int,
    sweeps: int = 1,
    problem: str = "manufactured",
    use_cache: bool = True,
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=JacobiTask,
        num_tasks=num_tasks,
        params={"n": n, "sweeps": sweeps, "problem": problem,
                "use_cache": use_cache},
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
