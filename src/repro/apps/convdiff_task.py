"""Convection–diffusion application: nonsymmetric blocks, BiCGSTAB inner.

Same strip decomposition and one-grid-line exchanges as the Poisson app —
the decomposition machinery is matrix-driven, so the upwind operator's
extra asymmetry changes nothing structurally — but the local solves use
BiCGSTAB because the blocks are nonsymmetric.  Upwinding keeps the global
operator an M-matrix, so the asynchronous execution remains certified.
"""

from __future__ import annotations

from typing import Any

from repro.numerics.bicgstab import bicgstab
from repro.numerics.cg import csr_matvec_into
from repro.numerics.convdiff import ConvectionDiffusion2D
from repro.numerics.residual import update_distance
from repro.numerics.splitting import shared_decomposition
from repro.p2p.messages import AppSpec
from repro.p2p.task import IterationStep, Task, TaskContext

import numpy as np

__all__ = ["ConvectionDiffusionTask", "make_convdiff_app"]


class ConvectionDiffusionTask(Task):
    """One strip of the upwind convection–diffusion problem.

    ``ctx.params``: ``n``, ``eps`` (diffusion, default 1.0), ``wx``/``wy``
    (velocity, default (1.0, 0.5)), ``overlap``, ``inner_tol``,
    ``use_cache`` (share the decomposition, default True; bitwise-neutral).
    """

    def setup(self, ctx: TaskContext) -> None:
        super().setup(ctx)
        n = int(ctx.params["n"])
        eps = float(ctx.params.get("eps", 1.0))
        wx = float(ctx.params.get("wx", 1.0))
        wy = float(ctx.params.get("wy", 0.5))
        overlap = int(ctx.params.get("overlap", 0))
        self.inner_tol = float(ctx.params.get("inner_tol", 1e-10))
        self.use_cache = bool(ctx.params.get("use_cache", True))

        def build_system():
            problem = ConvectionDiffusion2D(n, eps=eps, wx=wx, wy=wy)
            return problem.A, problem.b

        decomp = shared_decomposition(
            ("convdiff", n, eps, wx, wy),
            build_system,
            nblocks=ctx.num_tasks,
            line=n,
            overlap=overlap,
            enabled=self.use_cache,
        )
        self.blk = decomp.blocks[ctx.task_id]
        self.n = n
        self.x = np.zeros(self.blk.n_ext)
        self.ext = np.zeros(self.blk.ext_cols.size)
        if self.use_cache:
            self._rhs = np.empty(self.blk.n_ext)
            self._old_owned = np.empty(self.blk.n_owned)
            self._dist_work = np.empty(self.blk.n_owned)

    def initial_state(self) -> dict:
        blk = self.blk
        return {"x": np.zeros(blk.n_ext), "ext": np.zeros(blk.ext_cols.size)}

    def load_state(self, state: dict) -> None:
        self.x = np.array(state["x"], dtype=float, copy=True)
        self.ext = np.array(state["ext"], dtype=float, copy=True)

    def dump_state(self) -> dict:
        return {"x": self.x.copy(), "ext": self.ext.copy()}

    def iterate(self, inbox: dict[int, Any]) -> IterationStep:
        blk = self.blk
        for src_task, payload in inbox.items():
            positions = blk.ext_sources.get(src_task)
            if positions is None:
                continue
            values = np.asarray(payload, dtype=float)
            if values.shape == (positions.size,):
                self.ext[positions] = self.guard_payload(src_task, values)

        if self.use_cache:
            if self.ext.size:
                csr_matvec_into(blk.B_coupling, self.ext, self._rhs)
                np.subtract(blk.b_local, self._rhs, out=self._rhs)
                rhs = self._rhs
            else:
                rhs = blk.b_local
            np.copyto(self._old_owned, blk.owned_of(self.x))
            old_owned = self._old_owned
            result = bicgstab(blk.A_local, rhs, tol=self.inner_tol)
            self.x = result.x
            distance = update_distance(blk.owned_of(self.x), old_owned,
                                       work=self._dist_work)
        else:
            rhs = blk.b_local - (blk.B_coupling @ self.ext if self.ext.size else 0.0)
            old_owned = blk.owned_of(self.x).copy()
            result = bicgstab(blk.A_local, rhs, tol=self.inner_tol)
            self.x = result.x
            distance = update_distance(blk.owned_of(self.x), old_owned)
        outgoing = blk.outgoing_payloads(self.x)
        flops = result.flops + 2.0 * blk.B_coupling.nnz
        return IterationStep(
            flops=flops,
            outgoing=outgoing,
            local_distance=distance,
            info={"inner_iterations": result.iterations},
        )

    def solution_fragment(self):
        blk = self.blk
        return (blk.own_start, blk.owned_of(self.x).copy())


def make_convdiff_app(
    app_id: str,
    n: int,
    num_tasks: int,
    eps: float = 1.0,
    wx: float = 1.0,
    wy: float = 0.5,
    overlap: int = 0,
    use_cache: bool = True,
    convergence_threshold: float | None = None,
    stability_window: int | None = None,
) -> AppSpec:
    return AppSpec(
        app_id=app_id,
        task_factory=ConvectionDiffusionTask,
        num_tasks=num_tasks,
        params={"n": n, "eps": eps, "wx": wx, "wy": wy, "overlap": overlap,
                "use_cache": use_cache},
        convergence_threshold=convergence_threshold,
        stability_window=stability_window,
    )
