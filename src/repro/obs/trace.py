"""The trace bus: structured, allocation-light event records.

Every instrumented layer (``des``, ``net``, ``rmi``, ``p2p``) emits
:class:`TraceEvent` records into the :class:`Tracer` attached to the
simulation kernel (``sim.tracer``).  Tracing is opt-in: the kernel's
default tracer is :data:`NULL_TRACER`, whose :meth:`~NullTracer.emit` is a
no-op and whose :attr:`~Tracer.enabled` flag lets hot paths skip building
the attribute dict entirely::

    tr = self.sim.tracer
    if tr.enabled:
        tr.emit(self.sim.now, "net", "fabric", "drop", reason="partition")

Determinism: events are appended in kernel callback order, which the DES
heap makes deterministic (``(time, priority, sequence)``), so two runs with
the same seed produce the same events in the same order.  (Byte-identical
dumps additionally require a fresh interpreter per run: message and call
identifiers come from process-global counters.)  Each event also carries a
monotonically increasing ``seq`` so exporters can stable-sort simultaneous
events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceEvent", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``category`` names the emitting layer (``"des"``, ``"net"``, ``"rmi"``,
    ``"p2p"``); ``entity`` the emitting component (a daemon id, ``"fabric"``,
    an RMI runtime name); ``kind`` the event type within the category (see
    ``docs/observability.md`` for the full taxonomy); ``attrs`` the
    event-specific payload.
    """

    time: float
    category: str
    entity: str
    kind: str
    attrs: dict = field(default_factory=dict)
    seq: int = 0

    def as_dict(self) -> dict:
        """Flat dict form used by the exporters."""
        return {
            "time": self.time,
            "category": self.category,
            "entity": self.entity,
            "kind": self.kind,
            "seq": self.seq,
            **({"attrs": self.attrs} if self.attrs else {}),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        return (
            f"[{self.time:12.6f}] {self.category}/{self.kind:<18} "
            f"{self.entity:<16} {kv}"
        )


class Tracer:
    """Recording trace bus.

    ``max_events`` bounds memory for very long runs: when exceeded the
    oldest half of the buffer is dropped (``dropped`` counts them), while
    the per-``(category, kind)`` counters stay exact over the whole run.
    """

    enabled = True

    def __init__(self, max_events: int = 2_000_000):
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.counts: dict[tuple[str, str], int] = {}
        self.dropped = 0
        self._seq = 0

    def emit(
        self, time: float, category: str, entity: str, kind: str, **attrs
    ) -> TraceEvent:
        """Record one event; returns it (handy in tests)."""
        self._seq += 1
        ev = TraceEvent(float(time), category, entity, kind, attrs, self._seq)
        self.events.append(ev)
        key = (category, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        if len(self.events) > self.max_events:
            drop = len(self.events) // 2
            del self.events[:drop]
            self.dropped += drop
        return ev

    def count(self, category: str | None = None, kind: str | None = None) -> int:
        """Exact number of events matching ``category`` and/or ``kind``."""
        return sum(
            n
            for (cat, knd), n in self.counts.items()
            if (category is None or cat == category)
            and (kind is None or knd == kind)
        )

    def select(
        self,
        category: str | None = None,
        kind: str | None = None,
        entity: str | None = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> list[TraceEvent]:
        """The buffered events matching every given filter."""
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (kind is None or e.kind == kind)
            and (entity is None or e.entity == entity)
            and since <= e.time <= until
        ]

    def close(self) -> None:
        """Release sink resources; a no-op for in-memory tracers.

        Streaming sinks (:mod:`repro.obs.sinks`) override this to flush
        their final batch — callers can close any tracer unconditionally.
        """

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer events={len(self.events)} dropped={self.dropped}>"


class NullTracer(Tracer):
    """The disabled trace bus: every operation is a no-op.

    Hot paths check :attr:`enabled` before building keyword arguments, so a
    disabled run never allocates an attrs dict; even an unguarded
    ``emit(...)`` call records nothing.
    """

    enabled = False

    def __init__(self):
        super().__init__(max_events=0)

    def emit(self, time, category, entity, kind, **attrs) -> None:  # type: ignore[override]
        return None


#: process-wide disabled tracer; the kernel's default
NULL_TRACER = NullTracer()
