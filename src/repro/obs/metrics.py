"""The metrics registry: labelled counters, gauges and histograms.

Where the trace bus (:mod:`repro.obs.trace`) records *what happened when*,
the registry aggregates *how much of it happened*: monotonic counters,
point-in-time gauges and distribution summaries, each optionally labelled
(``counter.inc(task=3)`` keeps one value per label set).

:class:`~repro.p2p.telemetry.Telemetry` is a thin compatibility façade over
one of these registries, so legacy counter reads keep working while new code
can query the registry directly (``registry.snapshot()``).
"""

from __future__ import annotations

from repro.util.stats import Histogram as _Bins
from repro.util.stats import OnlineStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_UNLABELLED: tuple = ()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items())) if labels else _UNLABELLED


class Metric:
    """Base: a named, documented family of labelled values."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class Counter(Metric):
    """Monotonic (by convention) accumulator with one value per label set."""

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        """Absolute write — exists for the Telemetry façade's legacy
        ``telemetry.field += 1`` pattern (read-modify-write)."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def by_label(self, label_name: str) -> dict:
        """Aggregate totals keyed by one label's values."""
        out: dict = {}
        for key, v in self._values.items():
            for k, lv in key:
                if k == label_name:
                    out[lv] = out.get(lv, 0.0) + v
        return out

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "total": self.total,
            "values": {str(dict(k)) if k else "": v for k, v in self._values.items()},
        }


class Gauge(Metric):
    """Point-in-time value per label set (last write wins)."""

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, default: float | None = None, **labels):
        return self._values.get(_label_key(labels), default)

    def clear(self, **labels) -> None:
        self._values.pop(_label_key(labels), None)

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "values": {str(dict(k)) if k else "": v for k, v in self._values.items()},
        }


class Histogram(Metric):
    """Distribution summary: Welford stats, optionally with fixed bins.

    Without ``low``/``high`` bounds it keeps only the online summary
    (count/mean/std/min/max); with bounds it also maintains a fixed-bin
    :class:`repro.util.stats.Histogram` for approximate quantiles.
    """

    def __init__(
        self,
        name: str,
        help: str = "",
        low: float | None = None,
        high: float | None = None,
        bins: int = 32,
    ):
        super().__init__(name, help)
        self.stats = OnlineStats()
        self.bins = _Bins(low, high, bins) if low is not None and high is not None else None

    def observe(self, value: float) -> None:
        self.stats.add(value)
        if self.bins is not None:
            self.bins.add(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def quantile(self, q: float) -> float:
        if self.bins is None:
            raise ValueError(f"histogram {self.name!r} has no bins (pass low/high)")
        return self.bins.quantile(q)

    def snapshot(self) -> dict:
        out = {"type": "histogram", **self.stats.as_dict()}
        if self.bins is not None:
            out["p50"] = self.bins.quantile(0.50)
            out["p95"] = self.bins.quantile(0.95)
        return out


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by name.

    Re-requesting an existing name returns the same object (so independent
    components can share a counter); requesting it as a different metric
    type raises.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        low: float | None = None,
        high: float | None = None,
        bins: int = 32,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, low=low, high=high, bins=bins)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-friendly dump of every metric's current state."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}
