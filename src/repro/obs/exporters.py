"""Trace and metrics exporters.

Three output formats:

* **JSONL** — one JSON object per trace event, the portable interchange
  format (``repro-cli trace --out run.jsonl``);
* **Chrome ``trace_event``** — a JSON document loadable in
  ``chrome://tracing`` / Perfetto: each trace category becomes a process
  row, each entity a named thread row, each event an instant marker;
* **metrics JSON** — a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
  dump.

All functions accept either a :class:`~repro.obs.trace.Tracer` or any
iterable of :class:`~repro.obs.trace.TraceEvent`.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer

__all__ = [
    "trace_to_jsonl",
    "write_jsonl",
    "trace_to_chrome",
    "write_chrome_trace",
    "write_metrics_json",
]


def _events(trace: Tracer | Iterable[TraceEvent]) -> list[TraceEvent]:
    return list(trace)


def trace_to_jsonl(trace: Tracer | Iterable[TraceEvent]) -> list[str]:
    """One compact JSON line per event, in emission order.

    Non-JSON-native attribute values (stubs, exceptions, numpy scalars)
    are rendered through ``repr`` rather than erroring: traces are
    diagnostics and must never take the run down.
    """
    return [
        json.dumps(e.as_dict(), sort_keys=True, separators=(",", ":"), default=repr)
        for e in _events(trace)
    ]


def write_jsonl(trace: Tracer | Iterable[TraceEvent], path) -> int:
    """Write the JSONL dump to ``path``; returns the number of events."""
    lines = trace_to_jsonl(trace)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def trace_to_chrome(trace: Tracer | Iterable[TraceEvent]) -> dict:
    """The Chrome ``trace_event`` document (JSON-serializable dict).

    Mapping: category → process (pid), entity → thread (tid), event →
    instant event ("ph": "i") at ``time`` seconds rendered as microsecond
    timestamps.  Metadata records name the rows so the timeline reads as
    ``net / fabric``, ``p2p / D3#1`` and so on.
    """
    events = _events(trace)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    out: list[dict] = []
    for cat in sorted({e.category for e in events}):
        pids[cat] = len(pids) + 1
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pids[cat],
                "tid": 0,
                "args": {"name": cat},
            }
        )
    for key in sorted({(e.category, e.entity) for e in events}):
        tids[key] = len(tids) + 1
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pids[key[0]],
                "tid": tids[key],
                "args": {"name": key[1]},
            }
        )
    for e in sorted(events, key=lambda e: (e.time, e.seq)):
        out.append(
            {
                "ph": "i",
                "s": "t",
                "name": e.kind,
                "cat": e.category,
                "ts": e.time * 1e6,
                "pid": pids[e.category],
                "tid": tids[(e.category, e.entity)],
                "args": dict(e.attrs),
            }
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Tracer | Iterable[TraceEvent], path) -> int:
    """Write the Chrome-format document to ``path``; returns event count."""
    doc = trace_to_chrome(trace)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, default=repr)
    return sum(1 for rec in doc["traceEvents"] if rec["ph"] == "i")


def write_metrics_json(registry: MetricsRegistry, path) -> None:
    """Dump ``registry.snapshot()`` as pretty-printed JSON."""
    with open(path, "w") as fh:
        json.dump(registry.snapshot(), fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
