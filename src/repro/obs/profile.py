"""Profiling harness: cProfile capture with per-layer time attribution.

The question a simulator developer actually asks is not "which function is
hot" but "which *layer* is eating the run" — kernel, network fabric, RMI,
protocol logic, or numerics.  This module runs any callable under
:mod:`cProfile` and folds the flat stats into both views:

* :attr:`ProfileReport.layers` — exclusive (``tottime``) seconds summed per
  architectural layer, mapped from module paths (``repro/des/...`` →
  ``kernel``, ``repro/net/...`` → ``network``, ...).  Exclusive time
  partitions the total exactly: the fractions sum to 1.
* :attr:`ProfileReport.top` — the classic top-N functions by cumulative
  time, for drilling into a layer once attribution has pointed at it.

Usage::

    from repro.obs.profile import profile_callable
    report, result = profile_callable(lambda: run_poisson_on_p2p(n=16, peers=3))
    print(report.to_text())

or from the shell::

    repro-cli profile --n 16 --peers 3 --top 15 --json profile.json

The capture is deliberately *outside* the simulator: profiling a run never
touches kernel state, so a profiled run returns bitwise-identical results
to an unprofiled one (cProfile only adds wall-clock overhead).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = ["LAYERS", "ProfileReport", "profile_callable", "layer_of"]

#: Ordered layer → module-path-prefix table.  First match wins; paths are
#: matched against the part of the filename after the last ``repro/``.
LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("kernel", ("des/",)),
    ("network", ("net/",)),
    ("rmi", ("rmi/",)),
    ("p2p", ("p2p/",)),
    ("numerics", ("numerics/", "apps/", "convergence/", "baselines/", "local/")),
    ("faults", ("faults/", "churn/",)),
    ("checkpoint", ("checkpoint/",)),
    ("obs", ("obs/",)),
    ("harness", ("exec/", "experiments/", "cli.py")),
    ("util", ("util/", "errors.py", "version.py", "__init__.py")),
)

#: Layer assigned to frames outside the ``repro`` package (stdlib,
#: interpreter builtins, site-packages).
OTHER_LAYER = "other"

_MARKER = "repro/"


def layer_of(filename: str) -> str:
    """Map a profile frame's filename to its architectural layer."""
    idx = filename.rfind(_MARKER)
    if idx < 0:
        return OTHER_LAYER
    rel = filename[idx + len(_MARKER):]
    for layer, prefixes in LAYERS:
        for prefix in prefixes:
            if rel.startswith(prefix):
                return layer
    return OTHER_LAYER


@dataclass
class ProfileReport:
    """Folded view of one cProfile capture."""

    total_time_s: float
    total_calls: int
    #: layer → {"time_s": exclusive seconds, "fraction": share of total}
    layers: dict = field(default_factory=dict)
    #: top functions by cumulative time:
    #: {"function", "file", "line", "ncalls", "tottime_s", "cumtime_s"}
    top: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready payload (the schema the golden test pins)."""
        return {
            "total_time_s": self.total_time_s,
            "total_calls": self.total_calls,
            "layers": {
                name: {"time_s": entry["time_s"], "fraction": entry["fraction"]}
                for name, entry in self.layers.items()
            },
            "top": list(self.top),
        }

    def to_text(self, top_n: int | None = None) -> str:
        lines = [
            f"profile: {self.total_time_s:.3f}s, {self.total_calls} calls",
            "",
            "per-layer attribution (exclusive time):",
        ]
        width = max((len(name) for name in self.layers), default=5)
        for name, entry in sorted(
            self.layers.items(), key=lambda kv: -kv[1]["time_s"]
        ):
            bar = "#" * round(40 * entry["fraction"])
            lines.append(
                f"  {name:>{width}}  {entry['time_s']:8.3f}s"
                f"  {100 * entry['fraction']:5.1f}%  {bar}"
            )
        lines.append("")
        lines.append("top functions (cumulative):")
        for row in self.top[: top_n or len(self.top)]:
            lines.append(
                f"  {row['cumtime_s']:8.3f}s cum  {row['tottime_s']:8.3f}s excl"
                f"  {row['ncalls']:>9}x  {row['function']}"
                f"  ({row['file']}:{row['line']})"
            )
        return "\n".join(lines)


#: repository root (this file lives at src/repro/obs/profile.py)
_REPO_ROOT = str(Path(__file__).resolve().parents[3])


def _repo_relative(filename: str) -> str:
    """Strip the machine-specific repo prefix from a profile frame path.

    Committed baselines (``BENCH_swarm.json``'s ``profile_top``) embed
    these paths; repo-relative forms diff cleanly across checkouts.
    Frames outside the repo (stdlib, site-packages, ``<built-in>``) pass
    through unchanged.
    """
    if filename.startswith(_REPO_ROOT + "/"):
        return filename[len(_REPO_ROOT) + 1:]
    return filename


def _fold(stats: pstats.Stats, top_n: int) -> ProfileReport:
    total_tt = 0.0
    total_calls = 0
    layer_time: dict[str, float] = {}
    rows = []
    for (filename, line, funcname), (cc, nc, tt, ct, _callers) in stats.stats.items():
        total_tt += tt
        total_calls += nc
        layer = layer_of(filename)
        layer_time[layer] = layer_time.get(layer, 0.0) + tt
        rows.append((ct, tt, nc, funcname, filename, line))
    # recursion makes cumtime of the root exceed wall time; sorting by it
    # still surfaces the structurally expensive call trees first
    rows.sort(key=lambda r: -r[0])
    top = [
        {
            "function": funcname,
            "file": _repo_relative(filename),
            "line": line,
            "ncalls": nc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        }
        for ct, tt, nc, funcname, filename, line in rows[:top_n]
    ]
    denom = total_tt or 1.0
    layers = {
        name: {"time_s": round(t, 6), "fraction": round(t / denom, 6)}
        for name, t in layer_time.items()
    }
    return ProfileReport(
        total_time_s=round(total_tt, 6),
        total_calls=total_calls,
        layers=layers,
        top=top,
    )


def profile_callable(
    fn: Callable[[], Any], top_n: int = 10
) -> tuple[ProfileReport, Any]:
    """Run ``fn()`` under cProfile; returns ``(report, fn's return value)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    return _fold(stats, top_n=top_n), value
