"""In-process measurement of a running application.

:class:`RunTelemetry` is an *instrument*, not a protocol participant:
entities write counters into it directly (outside the simulated network),
the experiment harness reads them afterwards.  Nothing in the runtime's
behaviour depends on it.

It is a thin attribute surface over a
:class:`~repro.obs.metrics.MetricsRegistry`: every field
(``data_messages_sent``, ``iterations`` …) reads and writes registry
metrics, so the same numbers are available both through the attribute API
and through ``telemetry.registry.snapshot()`` /
:func:`repro.obs.report.build_run_report`.

(Historically this lived at :class:`repro.p2p.telemetry.Telemetry`; that
name is now a deprecated alias of this class.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

__all__ = ["RunTelemetry", "RecoveryRecord"]


@dataclass(frozen=True)
class RecoveryRecord:
    """One task restart after a failure."""

    time: float
    task_id: int
    resumed_iteration: int
    from_scratch: bool


class RunTelemetry:
    """Aggregated counters for one application run (registry façade).

    ``registry`` defaults to a private :class:`MetricsRegistry`; pass one in
    to aggregate several instruments into a shared registry (each instrument
    then shares metric families, so only do this for one application).
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._iterations = r.counter(
            "task_iterations", "completed iterations, labelled by task")
        self._useless = r.counter(
            "task_useless_iterations",
            "iterations without fresh neighbour data (paper §7), by task")
        self._data_messages = r.counter(
            "data_messages_sent", "asynchronous dependency messages sent")
        self._checkpoints = r.counter(
            "checkpoints_sent", "Backup objects shipped to guardian peers")
        self._checkpoint_bytes = r.counter(
            "checkpoint_bytes", "Backup payload bytes shipped to guardians")
        self._checkpoints_rejected = r.counter(
            "checkpoints_rejected",
            "Backups refused at recovery by the plausibility screen")
        self._components_rejected = r.counter(
            "components_rejected",
            "boundary components discarded by the corruption filter")
        self._convergence_messages = r.counter(
            "convergence_messages", "local-stability flip messages sent")
        self._recoveries = r.counter(
            "recoveries", "task restarts after a detected failure")
        self._from_scratch = r.counter(
            "restarts_from_scratch", "recoveries with every Backup lost")
        self._launched = r.gauge(
            "launched_at", "simulated time the application was launched")
        self._converged = r.gauge(
            "converged_at", "simulated time global convergence was declared")
        self._frontier = r.gauge(
            "task_frontier",
            "iteration each task had reached when the app halted, by task")
        self._launched.set(0.0)
        #: full recovery history (order preserved, richer than the counter)
        self.recoveries: list[RecoveryRecord] = []

    def record_frontier(self, task_id: int, iteration: int) -> None:
        """The iteration a task stood at when global convergence halted it."""
        self._frontier.set(float(iteration), task=task_id)

    # -- writers -------------------------------------------------------------

    def record_iteration(self, task_id: int, fresh: bool) -> None:
        self._iterations.inc(task=task_id)
        if not fresh:
            self._useless.inc(task=task_id)

    def record_recovery(
        self, time: float, task_id: int, resumed_iteration: int, from_scratch: bool
    ) -> None:
        self.recoveries.append(
            RecoveryRecord(time, task_id, resumed_iteration, from_scratch)
        )
        self._recoveries.inc(task=task_id)
        if from_scratch:
            self._from_scratch.inc(task=task_id)

    # -- scalar fields (read-modify-write works) ------------------------------

    @property
    def data_messages_sent(self) -> int:
        return int(self._data_messages.total)

    @data_messages_sent.setter
    def data_messages_sent(self, value: int) -> None:
        self._data_messages.set(value)

    @property
    def checkpoints_sent(self) -> int:
        return int(self._checkpoints.total)

    @checkpoints_sent.setter
    def checkpoints_sent(self, value: int) -> None:
        self._checkpoints.set(value)

    @property
    def checkpoint_bytes(self) -> int:
        return int(self._checkpoint_bytes.total)

    @checkpoint_bytes.setter
    def checkpoint_bytes(self, value: int) -> None:
        self._checkpoint_bytes.set(value)

    @property
    def checkpoints_rejected(self) -> int:
        return int(self._checkpoints_rejected.total)

    @checkpoints_rejected.setter
    def checkpoints_rejected(self, value: int) -> None:
        self._checkpoints_rejected.set(value)

    @property
    def components_rejected(self) -> int:
        return int(self._components_rejected.total)

    @components_rejected.setter
    def components_rejected(self, value: int) -> None:
        self._components_rejected.set(value)

    @property
    def convergence_messages(self) -> int:
        return int(self._convergence_messages.total)

    @convergence_messages.setter
    def convergence_messages(self, value: int) -> None:
        self._convergence_messages.set(value)

    @property
    def launched_at(self) -> float:
        return self._launched.value(default=0.0)

    @launched_at.setter
    def launched_at(self, value: float) -> None:
        self._launched.set(value)

    @property
    def converged_at(self) -> float | None:
        return self._converged.value(default=None)

    @converged_at.setter
    def converged_at(self, value: float | None) -> None:
        if value is None:
            self._converged.clear()
        else:
            self._converged.set(value)

    # -- dict views -------------------------------------------------------------

    @property
    def iterations(self) -> dict[int, int]:
        """Completed iterations per task (defaultdict view of the counter)."""
        return defaultdict(
            int, {t: int(v) for t, v in self._iterations.by_label("task").items()}
        )

    @property
    def useless_iterations(self) -> dict[int, int]:
        return defaultdict(
            int, {t: int(v) for t, v in self._useless.by_label("task").items()}
        )

    # -- readers ----------------------------------------------------------------

    @property
    def total_iterations(self) -> int:
        return int(self._iterations.total)

    @property
    def total_useless(self) -> int:
        return int(self._useless.total)

    @property
    def useless_fraction(self) -> float:
        total = self.total_iterations
        return self.total_useless / total if total else 0.0

    @property
    def max_task_iterations(self) -> int:
        values = self._iterations.by_label("task").values()
        return int(max(values, default=0))

    @property
    def mean_task_iterations(self) -> float:
        per_task = self._iterations.by_label("task")
        return self.total_iterations / len(per_task) if per_task else 0.0

    @property
    def restarts_from_zero(self) -> int:
        return int(self._from_scratch.total)

    @property
    def wasted_iterations(self) -> int:
        """Iterations executed beyond the converged per-task frontier —
        i.e. work redone after recoveries rolled tasks back.  Zero until
        the app halts (the frontier is recorded at halt time)."""
        frontier = self._frontier._values
        if not frontier:
            return 0
        kept = int(sum(frontier.values()))
        return max(0, self.total_iterations - kept)

    @property
    def execution_time(self) -> float | None:
        converged = self.converged_at
        if converged is None:
            return None
        return converged - self.launched_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} iterations={self.total_iterations} "
            f"recoveries={len(self.recoveries)}>"
        )
