"""Bounded and streaming trace sinks for swarm-scale runs.

The default :class:`~repro.obs.trace.Tracer` keeps every event in memory —
fine for a 16-peer run, fatal for a 10 000-Daemon swarm emitting 10^8
events.  Two sinks bound the footprint:

* :class:`RingTracer` — a fixed-capacity ring buffer: the newest
  ``capacity`` events stay addressable (``select``/exporters work on the
  window), everything older is dropped and counted.  O(capacity) memory,
  zero I/O.
* :class:`JsonlTracer` — a spill-to-disk sink: events stream to a JSONL
  file in buffered batches, rotating to numbered segments at
  ``max_bytes``; only a small in-memory *tail* ring (for ``RunReport``
  and quick inspection) and the exact per-``(category, kind)`` counters
  stay resident.  Memory is O(buffer + tail) no matter how many events
  the run emits; :func:`read_jsonl_trace` round-trips the segments back
  into :class:`TraceEvent` records.

Both sinks keep :attr:`Tracer.counts` exact over the whole run, so
:func:`~repro.obs.report.build_run_report` works unchanged on any sink.
Select one per run through :class:`~repro.exec.spec.RunSpec`
(``trace_sink="ring" | "jsonl"``) or build one directly via
:func:`make_tracer`.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.trace import TraceEvent, Tracer

__all__ = ["RingTracer", "JsonlTracer", "make_tracer", "read_jsonl_trace"]

#: default ring capacity / JSONL tail size
DEFAULT_RING_CAPACITY = 100_000
#: default JSONL write-buffer size (events per flush)
DEFAULT_FLUSH_EVERY = 10_000
#: default JSONL segment rotation threshold
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class RingTracer(Tracer):
    """Fixed-capacity ring buffer over the newest events.

    ``dropped`` counts evicted events; ``counts`` stays exact for the
    whole run.  Unlike the base tracer's drop-half policy, memory never
    exceeds ``capacity`` events.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ConfigurationError("ring capacity must be >= 1")
        super().__init__(max_events=capacity)
        self.capacity = capacity
        self.events = deque(maxlen=capacity)  # type: ignore[assignment]

    def emit(self, time, category, entity, kind, **attrs) -> TraceEvent:
        self._seq += 1
        ev = TraceEvent(float(time), category, entity, kind, attrs, self._seq)
        if len(self.events) == self.capacity:
            self.dropped += 1  # deque evicts the oldest on append
        self.events.append(ev)
        key = (category, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        return ev


class JsonlTracer(Tracer):
    """Streaming sink: events spill to JSONL segments on disk.

    Writes go to ``path`` in batches of ``flush_every`` events; when the
    live file would exceed ``max_bytes`` it rotates to ``path.1``,
    ``path.2``, ... (chronological: segment 1 is oldest, the live file is
    newest).  An in-memory ring of the last ``tail_events`` events keeps
    ``select``/``__iter__`` useful for reports without re-reading disk.

    Call :meth:`close` (or use the driver, which does) to flush the final
    batch; the sink is also safe to flush mid-run.
    """

    def __init__(
        self,
        path,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        max_bytes: int = DEFAULT_MAX_BYTES,
        tail_events: int = 10_000,
    ):
        if flush_every < 1:
            raise ConfigurationError("flush_every must be >= 1")
        if max_bytes < 1:
            raise ConfigurationError("max_bytes must be >= 1")
        super().__init__(max_events=tail_events)
        self.path = Path(path)
        self.flush_every = flush_every
        self.max_bytes = max_bytes
        self.events = deque(maxlen=tail_events)  # type: ignore[assignment]
        self.written = 0  # events flushed to disk
        self.segments = 0  # rotations performed
        self._buffer: list[str] = []
        self._buffer_bytes = 0
        self._file_bytes = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")  # truncate: one sink owns one trace

    def emit(self, time, category, entity, kind, **attrs) -> TraceEvent:
        self._seq += 1
        ev = TraceEvent(float(time), category, entity, kind, attrs, self._seq)
        self.events.append(ev)
        key = (category, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        line = json.dumps(ev.as_dict(), sort_keys=True,
                          separators=(",", ":"), default=repr)
        self._buffer.append(line)
        self._buffer_bytes += len(line) + 1
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return ev

    def flush(self) -> None:
        """Write the buffered batch out, rotating the segment if needed."""
        if not self._buffer:
            return
        if self._file_bytes > 0 and \
                self._file_bytes + self._buffer_bytes > self.max_bytes:
            self._rotate()
        with open(self.path, "a") as fh:
            fh.write("\n".join(self._buffer) + "\n")
        self.written += len(self._buffer)
        self._file_bytes += self._buffer_bytes
        self._buffer = []
        self._buffer_bytes = 0

    def _rotate(self) -> None:
        self.segments += 1
        self.path.rename(self.segment_path(self.segments))
        self.path.write_text("")
        self._file_bytes = 0

    def segment_path(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    def segment_paths(self) -> list[Path]:
        """All on-disk pieces, oldest first (live file last)."""
        return [self.segment_path(i) for i in range(1, self.segments + 1)] \
            + [self.path]

    def close(self) -> None:
        self.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<JsonlTracer {self.path} written={self.written} "
                f"segments={self.segments}>")


def read_jsonl_trace(path) -> list[TraceEvent]:
    """Read a :class:`JsonlTracer` dump (live file + rotated segments)
    back into :class:`TraceEvent` records, in emission order."""
    path = Path(path)
    pieces = sorted(
        (p for p in path.parent.glob(f"{path.name}.*")
         if p.suffix.lstrip(".").isdigit()),
        key=lambda p: int(p.suffix.lstrip(".")),
    )
    if path.exists():
        pieces.append(path)
    events: list[TraceEvent] = []
    for piece in pieces:
        with open(piece) as fh:
            for line in fh:
                if not line.strip():
                    continue
                rec = json.loads(line)
                events.append(TraceEvent(
                    time=rec["time"], category=rec["category"],
                    entity=rec["entity"], kind=rec["kind"],
                    attrs=rec.get("attrs", {}), seq=rec.get("seq", 0),
                ))
    return events


def make_tracer(sink: str = "memory", capacity: int | None = None,
                path=None, **kwargs) -> Tracer:
    """Build the trace sink selected by a :class:`~repro.exec.spec.RunSpec`.

    ``sink="memory"`` is the historical unbounded-ish default tracer
    (drop-half beyond ``capacity``); ``"ring"`` a :class:`RingTracer`;
    ``"jsonl"`` a :class:`JsonlTracer` spilling to ``path``.  ``capacity``
    maps to the sink's natural bound (max events / ring size / tail
    size); extra ``kwargs`` pass through to the sink constructor.
    """
    if sink == "memory":
        return Tracer(max_events=capacity) if capacity else Tracer()
    if sink == "ring":
        return RingTracer(capacity or DEFAULT_RING_CAPACITY)
    if sink == "jsonl":
        if path is None:
            raise ConfigurationError('trace sink "jsonl" needs a trace_path')
        if capacity is not None:
            kwargs.setdefault("tail_events", capacity)
        return JsonlTracer(path, **kwargs)
    raise ConfigurationError(
        f'unknown trace sink {sink!r} (choose "memory", "ring" or "jsonl")'
    )
