"""Human-readable run reports.

:func:`build_run_report` condenses one application run — the
:class:`~repro.p2p.telemetry.Telemetry` façade, the network's delivery
statistics and (when tracing was on) the trace bus — into a
:class:`RunReport` that renders as plain text or markdown.  This is what
``repro-cli report`` prints.

The report's numbers are sourced from the same metrics registry the
``Telemetry`` compatibility façade fronts, so report output always agrees
with the legacy counters the experiment harness asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Tracer

__all__ = ["RunReport", "build_run_report"]


@dataclass
class RunReport:
    """Condensed facts about one application run."""

    app_id: str = ""
    converged: bool = False
    launched_at: float = 0.0
    converged_at: float | None = None
    execution_time: float | None = None
    total_iterations: int = 0
    useless_fraction: float = 0.0
    data_messages_sent: int = 0
    checkpoints_sent: int = 0
    convergence_messages: int = 0
    #: ``(time, task_id, resumed_iteration, from_scratch)`` per recovery
    recoveries: list = field(default_factory=list)
    restarts_from_zero: int = 0
    heartbeat_misses: int = 0
    evictions: int = 0
    replacements: int = 0
    net_stats: dict = field(default_factory=dict)
    #: executed fault-plane actions as ``FaultRecord`` dicts (empty when the
    #: run had no fault plan)
    faults: list = field(default_factory=list)
    #: exact per-``(category, kind)`` trace counts (empty without a tracer)
    event_counts: dict = field(default_factory=dict)

    # -- transport ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON-ready dump (inverse of :meth:`from_dict`).

        Tuple-keyed ``event_counts`` become ``"category/kind"`` strings;
        :class:`~repro.p2p.telemetry.RecoveryRecord` entries become field
        dicts.  Used by the run cache and the sweep engine's cross-process
        transport.
        """
        from dataclasses import asdict as _asdict

        out = _asdict(self)
        out["recoveries"] = [
            rec if isinstance(rec, dict) else _asdict(rec)
            for rec in self.recoveries
        ]
        out["event_counts"] = {
            f"{category}/{kind}": count
            for (category, kind), count in self.event_counts.items()
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        from repro.obs.instruments import RecoveryRecord

        data = dict(data)
        data["recoveries"] = [
            RecoveryRecord(**rec) for rec in data.get("recoveries", ())
        ]
        data["event_counts"] = {
            tuple(name.split("/", 1)): count
            for name, count in data.get("event_counts", {}).items()
        }
        return cls(**data)

    # -- rendering ------------------------------------------------------------

    def _rows(self) -> list[tuple[str, str]]:
        time_s = (
            f"{self.execution_time:.3f} s" if self.execution_time is not None else "-"
        )
        drops = sum(
            v for k, v in self.net_stats.items() if k.startswith("dropped_")
        )
        return [
            ("converged", str(self.converged)),
            ("execution time", time_s),
            ("iterations", str(self.total_iterations)),
            ("useless fraction", f"{self.useless_fraction:.3f}"),
            ("data messages", str(self.data_messages_sent)),
            ("checkpoints sent", str(self.checkpoints_sent)),
            ("convergence msgs", str(self.convergence_messages)),
            ("heartbeat misses", str(self.heartbeat_misses)),
            ("evictions", str(self.evictions)),
            ("replacements", str(self.replacements)),
            ("recoveries", str(len(self.recoveries))),
            ("restarts from zero", str(self.restarts_from_zero)),
            ("messages sent", str(self.net_stats.get("sent", 0))),
            ("messages delivered", str(self.net_stats.get("delivered", 0))),
            ("messages dropped", str(drops)),
        ]

    def _fault_lines(self) -> list[str]:
        lines = []
        for rec in self.faults:
            detail = rec.get("detail", {})
            extras = "  ".join(f"{k}={v}" for k, v in detail.items())
            lines.append(f"t={rec['time']:.3f}s  {rec['kind']}  {extras}".rstrip())
        return lines

    def _recovery_lines(self) -> list[str]:
        lines = []
        for rec in self.recoveries:
            time, task_id, iteration, from_scratch = (
                rec.time,
                rec.task_id,
                rec.resumed_iteration,
                rec.from_scratch,
            )
            source = "scratch" if from_scratch else "backup"
            lines.append(
                f"t={time:.3f}s  task {task_id}  resumed at iteration "
                f"{iteration}  from {source}"
            )
        return lines

    def to_text(self) -> str:
        """Plain-text rendering (aligned key/value pairs)."""
        title = f"run report{f' — {self.app_id}' if self.app_id else ''}"
        lines = [title, "=" * len(title)]
        for key, value in self._rows():
            lines.append(f"{key:>20}: {value}")
        if self.faults:
            lines.append("")
            lines.append("fault history:")
            lines.extend(f"  {line}" for line in self._fault_lines())
        if self.recoveries:
            lines.append("")
            lines.append("recovery history:")
            lines.extend(f"  {line}" for line in self._recovery_lines())
        if self.event_counts:
            lines.append("")
            lines.append("trace events:")
            for (cat, kind), n in sorted(self.event_counts.items()):
                lines.append(f"  {cat + '/' + kind:<28} {n}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown rendering (tables)."""
        title = f"# Run report{f' — `{self.app_id}`' if self.app_id else ''}"
        lines = [title, "", "| metric | value |", "|---|---|"]
        lines.extend(f"| {key} | {value} |" for key, value in self._rows())
        if self.faults:
            lines += ["", "## Fault history", ""]
            lines.extend(f"* {line}" for line in self._fault_lines())
        if self.recoveries:
            lines += ["", "## Recovery history", ""]
            lines.extend(f"* {line}" for line in self._recovery_lines())
        if self.event_counts:
            lines += ["", "## Trace events", "", "| event | count |", "|---|---|"]
            lines.extend(
                f"| `{cat}/{kind}` | {n} |"
                for (cat, kind), n in sorted(self.event_counts.items())
            )
        return "\n".join(lines)


def build_run_report(
    telemetry,
    network=None,
    tracer: Tracer | None = None,
    spawner=None,
    superpeers=(),
    app_id: str = "",
    fault_injector=None,
) -> RunReport:
    """Assemble a :class:`RunReport` from whatever sources are at hand.

    ``telemetry`` is required (any object with the
    :class:`~repro.p2p.telemetry.Telemetry` read surface); the rest are
    optional and simply leave their sections empty/zero when absent.
    Heartbeat misses and evictions prefer exact trace counts and fall back
    to the spawner's / Super-Peers' own counters when tracing was off.
    ``fault_injector`` (a :class:`~repro.faults.FaultInjector`) fills the
    fault-history section with the executed plan.
    """
    report = RunReport(
        app_id=app_id or (spawner.app.app_id if spawner is not None else ""),
        converged=telemetry.converged_at is not None,
        launched_at=telemetry.launched_at,
        converged_at=telemetry.converged_at,
        execution_time=telemetry.execution_time,
        total_iterations=telemetry.total_iterations,
        useless_fraction=telemetry.useless_fraction,
        data_messages_sent=telemetry.data_messages_sent,
        checkpoints_sent=telemetry.checkpoints_sent,
        convergence_messages=telemetry.convergence_messages,
        recoveries=list(telemetry.recoveries),
        restarts_from_zero=telemetry.restarts_from_zero,
    )
    if network is not None:
        report.net_stats = network.stats()
    if fault_injector is not None:
        report.faults = [rec.to_dict() for rec in fault_injector.executed]
    if spawner is not None:
        report.heartbeat_misses = spawner.failures_detected
        report.replacements = spawner.replacements
    report.evictions = sum(sp.evictions for sp in superpeers)
    if tracer is not None and tracer.enabled:
        report.event_counts = dict(tracer.counts)
        report.heartbeat_misses = tracer.count("p2p", "hb_miss")
        report.evictions = tracer.count("p2p", "evict")
    return report
