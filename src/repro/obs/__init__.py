"""``repro.obs`` — the unified observability layer.

Three cooperating pieces (see ``docs/observability.md``):

* the **trace bus** (:mod:`repro.obs.trace`): structured
  :class:`TraceEvent` records emitted by every instrumented layer into the
  :class:`Tracer` attached to the simulation kernel; disabled by default
  via the zero-overhead :data:`NULL_TRACER`;
* the **metrics registry** (:mod:`repro.obs.metrics`): labelled
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` aggregates —
  the backing store of the :class:`~repro.obs.instruments.RunTelemetry`
  instrument (formerly ``repro.p2p.telemetry.Telemetry``, now a
  deprecated alias);
* the **exporters** (:mod:`repro.obs.exporters`, :mod:`repro.obs.report`):
  JSONL and Chrome ``trace_event`` dumps plus the plain-text/markdown
  :class:`RunReport` behind ``repro-cli trace`` / ``repro-cli report``.

Enable tracing on any run by handing the cluster a recording tracer::

    from repro.obs import Tracer, write_jsonl
    tracer = Tracer()
    cluster = build_cluster(n_daemons=10, tracer=tracer)
    ...
    write_jsonl(tracer, "run.jsonl")
"""

from repro.obs.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer
from repro.obs.sinks import JsonlTracer, RingTracer, make_tracer, read_jsonl_trace
from repro.obs.instruments import RecoveryRecord, RunTelemetry
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.exporters import (
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.report import RunReport, build_run_report
from repro.obs.profile import ProfileReport, layer_of, profile_callable

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RingTracer",
    "JsonlTracer",
    "make_tracer",
    "read_jsonl_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "RecoveryRecord",
    "trace_to_jsonl",
    "write_jsonl",
    "trace_to_chrome",
    "write_chrome_trace",
    "write_metrics_json",
    "RunReport",
    "build_run_report",
    "ProfileReport",
    "profile_callable",
    "layer_of",
]
