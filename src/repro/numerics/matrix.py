"""M-matrix theory and asynchronous-convergence checks.

The paper (§1) restricts attention to systems ``A x = b`` where ``A`` is an
M-matrix: ``A_ii > 0``, ``A_ij ≤ 0`` (i≠j), ``A`` nonsingular with
``A⁻¹ ≥ 0``.  Any weak regular splitting of an M-matrix yields an iterative
method that converges *asynchronously* — the theoretical licence for running
block-Jacobi with chaotic, delayed updates.  The practical sufficient
condition (§6) is ``ρ(|T|) < 1`` for the iteration matrix ``T``.

All dense paths here are meant for verification on small problems (tests,
ablations); nothing in the runtime hot path calls them.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "is_z_matrix",
    "is_m_matrix",
    "is_weak_regular_splitting",
    "jacobi_iteration_matrix",
    "block_jacobi_iteration_matrix",
    "spectral_radius",
    "async_convergence_radius",
]


def _as_dense(A) -> np.ndarray:
    if sp.issparse(A):
        return A.toarray()
    return np.asarray(A, dtype=float)


def is_z_matrix(A, tol: float = 1e-12) -> bool:
    """Z-matrix: non-positive off-diagonal entries."""
    D = _as_dense(A).copy()
    np.fill_diagonal(D, 0.0)
    return bool((D <= tol).all())


def is_m_matrix(A, tol: float = 1e-10) -> bool:
    """Nonsingular M-matrix test: Z-matrix with ``A⁻¹ ≥ 0``.

    Dense inverse — use on verification-sized problems only.
    """
    D = _as_dense(A)
    if D.shape[0] != D.shape[1]:
        return False
    if not is_z_matrix(D, tol):
        return False
    if (np.diag(D) <= 0).any():
        return False
    try:
        inv = np.linalg.inv(D)
    except np.linalg.LinAlgError:
        return False
    return bool((inv >= -tol).all())


def is_weak_regular_splitting(A, M, tol: float = 1e-10) -> bool:
    """Check that ``A = M - N`` is a weak regular splitting.

    Requires ``M`` nonsingular, ``M⁻¹ ≥ 0`` and ``M⁻¹ N ≥ 0``.
    """
    Ad, Md = _as_dense(A), _as_dense(M)
    if Ad.shape != Md.shape:
        raise ValueError("A and M must have identical shapes")
    try:
        Minv = np.linalg.inv(Md)
    except np.linalg.LinAlgError:
        return False
    if (Minv < -tol).any():
        return False
    T = Minv @ (Md - Ad)  # M^{-1} N
    return bool((T >= -tol).all())


def jacobi_iteration_matrix(A) -> np.ndarray:
    """Point-Jacobi iteration matrix ``T = I - D⁻¹ A`` (dense)."""
    Ad = _as_dense(A)
    d = np.diag(Ad)
    if (d == 0).any():
        raise ValueError("zero diagonal entry: Jacobi splitting undefined")
    return np.eye(Ad.shape[0]) - Ad / d[:, None]


def block_jacobi_iteration_matrix(A, blocks: list[np.ndarray]) -> np.ndarray:
    """Block-Jacobi iteration matrix ``T = I - M⁻¹ A`` for a partition.

    ``blocks`` is a list of index arrays covering ``range(n)`` disjointly
    (no overlap here: the overlapped operator is not a single square matrix;
    the overlapping variant is validated behaviourally in the solver tests).
    """
    Ad = _as_dense(A)
    nrows = Ad.shape[0]
    seen = np.zeros(nrows, dtype=bool)
    M = np.zeros_like(Ad)
    for idx in blocks:
        idx = np.asarray(idx)
        if seen[idx].any():
            raise ValueError("blocks overlap")
        seen[idx] = True
        M[np.ix_(idx, idx)] = Ad[np.ix_(idx, idx)]
    if not seen.all():
        raise ValueError("blocks do not cover the matrix")
    return np.eye(nrows) - np.linalg.solve(M, Ad)


def spectral_radius(T, iterations: int = 5000, tol: float = 1e-12, seed: int = 0) -> float:
    """Spectral radius estimate.

    Dense inputs up to ~1500 unknowns use exact eigenvalues.  Larger or
    sparse **nonnegative** inputs use a *shifted* power method on ``I + T``:
    iteration matrices of bipartite stencils (like the 5-point Laplacian)
    carry a ``±ρ`` eigenvalue pair, so the unshifted power method would
    oscillate; the shift makes ``1 + ρ`` strictly dominant.  General sparse
    inputs fall back to ARPACK.
    """
    if not sp.issparse(T) and min(T.shape) <= 1500:
        return float(np.abs(np.linalg.eigvals(np.asarray(T, dtype=float))).max())

    Ts = T.tocsr() if sp.issparse(T) else sp.csr_matrix(np.asarray(T, dtype=float))
    if Ts.shape[0] != Ts.shape[1]:
        raise ValueError("spectral_radius needs a square matrix")
    if Ts.nnz == 0:
        return 0.0
    if (Ts.data < 0).any():
        # general matrix: largest-magnitude eigenvalue via ARPACK
        from scipy.sparse.linalg import eigs

        k = 1
        if Ts.shape[0] - 2 <= k:  # ARPACK needs k < n-1
            return float(np.abs(np.linalg.eigvals(Ts.toarray())).max())
        # explicit start vector: ARPACK's own is drawn from process-global
        # state, which would make the estimate depend on unrelated prior calls
        v0 = np.random.default_rng(seed).random(Ts.shape[0]) + 0.1
        vals = eigs(Ts, k=k, which="LM", return_eigenvectors=False,
                    maxiter=iterations, v0=v0)
        return float(np.abs(vals).max())

    rng = np.random.default_rng(seed)
    x = rng.random(Ts.shape[0]) + 0.1
    x /= np.linalg.norm(x)
    lam = 0.0
    for _ in range(iterations):
        y = Ts @ x + x  # (I + T) x : Perron root of I+T is 1 + rho(T)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            return 0.0
        y /= norm
        new_lam = float(y @ (Ts @ y) + 1.0)
        if abs(new_lam - lam) < tol * max(new_lam, 1.0):
            return max(new_lam - 1.0, 0.0)
        lam, x = new_lam, y
    return max(lam - 1.0, 0.0)


def async_convergence_radius(T) -> float:
    """``ρ(|T|)`` — the paper's sufficient condition for asynchronous
    convergence is that this is < 1 (§6)."""
    if sp.issparse(T):
        return spectral_radius(abs(T))
    return spectral_radius(np.abs(_as_dense(T)))
