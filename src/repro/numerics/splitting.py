"""Block decomposition with component overlapping (paper §6).

The grid's ``n²`` unknowns are split into horizontal strips of whole grid
lines, one strip ("block") per processor.  Each block *owns* a contiguous
range of grid lines; with overlap ``o`` it additionally *computes* ``o``
lines on each side (components computed by two processors).  Crucially —
and this is the paper's point — the data exchanged per neighbour stays **one
grid line (n components)** regardless of the overlap: the line a block needs
is the boundary line of its *extended* region, which lies inside the
neighbour's owned region as long as ``o + 1 ≤`` the neighbour's strip width.

The decomposition is derived purely from the sparse matrix: the external
components a block needs are exactly the columns outside its extended range
that carry nonzeros in its rows.  For the 5-point Laplacian these are the
one grid line above and below; the machinery is generic, so other banded
operators (e.g. the implicit heat-equation matrix) decompose identically.

Two construction paths produce value-identical blocks:

* ``build="fast"`` (default) slices each block's row range once and splits
  it into ``A_local`` / ``B_coupling`` with vectorized index arithmetic on
  the raw CSR arrays — no per-block CSC conversion;
* ``build="legacy"`` is the original per-block ``A[ext,:].tocsc()`` column
  slicing, kept as the reference implementation (and as the honest
  cache-bypass arm of :mod:`benchmarks.bench_hotpath`).

Because every task of an application — and every churn replacement — derives
the *same* decomposition from the application parameters,
:func:`shared_decomposition` memoizes builds process-wide.  Cached
decompositions are frozen (``writeable=False`` on every array) so a task
mutating shared operators fails loudly instead of corrupting its siblings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.util.hotpath import HOTPATH, register_cache

__all__ = ["BlockInfo", "BlockDecomposition", "DecompositionCache",
           "DECOMPOSITION_CACHE", "shared_decomposition"]


@dataclass
class BlockInfo:
    """Everything one processor needs for its local sub-iterations."""

    index: int
    #: owned global index range [own_start, own_end)
    own_start: int
    own_end: int
    #: extended (computed) global range [ext_start, ext_end)
    ext_start: int
    ext_end: int
    #: local sub-matrix A[ext, ext] (CSR)
    A_local: sp.csr_matrix
    #: global column indices outside the extended range with nonzeros in
    #: this block's rows — the components that must come from neighbours
    ext_cols: np.ndarray
    #: coupling matrix A[ext, ext_cols] (CSR): local_rhs = b_ext - B @ ext_vals
    B_coupling: sp.csr_matrix
    #: local right-hand side b[ext]
    b_local: np.ndarray
    #: map neighbour block index -> (positions in ext_cols owned by them)
    ext_sources: dict[int, np.ndarray] = field(default_factory=dict)
    #: map neighbour block index -> global indices this block must SEND them
    send_map: dict[int, np.ndarray] = field(default_factory=dict)
    #: map neighbour block index -> *local* indices of the same components
    #: (``send_map[nb] - ext_start``, precomputed once)
    send_local: dict[int, np.ndarray] = field(default_factory=dict)
    #: neighbours whose send indices form one contiguous local run, as
    #: ``slice(start, stop)`` — for strip decompositions that is every
    #: neighbour (a whole grid line), which is what makes the zero-copy
    #: boundary payloads of :meth:`values_to_send_view` possible
    send_slices: dict[int, slice] = field(default_factory=dict)
    #: scratch slot for per-matrix solver state (e.g. the cached
    #: :class:`~repro.numerics.cg.CgOperator`); keyed by consumer name.
    #: Excluded from equality: it is a cache, not part of the decomposition.
    op_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def n_owned(self) -> int:
        return self.own_end - self.own_start

    @property
    def n_ext(self) -> int:
        return self.ext_end - self.ext_start

    def owned_of(self, x_local: np.ndarray) -> np.ndarray:
        """Extract the owned components from an extended-range local vector."""
        lo = self.own_start - self.ext_start
        return x_local[lo : lo + self.n_owned]

    def values_to_send(self, x_local: np.ndarray, neighbour: int) -> np.ndarray:
        """The components destined for ``neighbour`` (one grid line each)."""
        idx = self.send_local.get(neighbour)
        if idx is None:
            idx = self.send_map[neighbour] - self.ext_start
        return x_local[idx]

    def values_to_send_view(self, x_local: np.ndarray, neighbour: int) -> np.ndarray:
        """Zero-copy variant: a frozen (read-only) view when the send
        indices are one contiguous run, else the copying fallback.

        Value-identical to :meth:`values_to_send`; the returned array is
        marked non-writeable so a receiver mutating a boundary payload in
        place fails loudly instead of corrupting the sender's state.
        """
        sl = self.send_slices.get(neighbour)
        if sl is None:
            return self.values_to_send(x_local, neighbour)
        v = x_local[sl]
        v.flags.writeable = False
        return v

    def outgoing_payloads(self, x_local: np.ndarray) -> dict[int, np.ndarray]:
        """One boundary payload per neighbour — frozen zero-copy views
        under :data:`HOTPATH.zerocopy`, copying otherwise.

        Safe for every task in :mod:`repro.apps`: they *rebind* their
        solution vector each iteration (never mutate it in place), so an
        in-flight view keeps showing the values it was sent with.
        """
        if HOTPATH.zerocopy:
            return {nb: self.values_to_send_view(x_local, nb)
                    for nb in self.send_map}
        return {nb: self.values_to_send(x_local, nb) for nb in self.send_map}

    def _index_slices(self) -> None:
        """Precompute :attr:`send_slices` from :attr:`send_local`."""
        for nb, idx in self.send_local.items():
            if idx.size and idx[-1] - idx[0] == idx.size - 1 and (
                idx.size < 2 or bool((np.diff(idx) == 1).all())
            ):
                self.send_slices[nb] = slice(int(idx[0]), int(idx[-1]) + 1)


class BlockDecomposition:
    """Split ``A x = b`` into ``nblocks`` strip blocks with overlap.

    Parameters
    ----------
    A, b:
        The global system (CSR / dense vector).
    nblocks:
        Number of processors.
    line:
        Size of one indivisible line of components (the paper's ``n``:
        block boundaries are multiples of a discretized grid line).  Use 1
        for unstructured systems.
    overlap:
        Number of *lines* computed by two neighbouring processors on each
        side.  Must leave every extended boundary inside the neighbour's
        owned range (``overlap + 1 <= min strip width in lines``).
    build:
        ``"fast"`` (vectorized CSR split, default) or ``"legacy"`` (the
        original per-block CSC column slicing).  Both produce
        value-identical blocks; the legacy path exists as the reference
        implementation and the benchmark's cache-bypass arm.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        b: np.ndarray,
        nblocks: int,
        line: int = 1,
        overlap: int = 0,
        build: str = "fast",
    ):
        A = A.tocsr()
        N = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError("A must be square")
        b = np.asarray(b, dtype=float)
        if b.shape != (N,):
            raise ValueError("b shape mismatch")
        if N % line != 0:
            raise ValueError(f"system size {N} is not a multiple of line={line}")
        nlines = N // line
        if not 1 <= nblocks <= nlines:
            raise ValueError(f"nblocks must be in [1, {nlines}]")
        if overlap < 0:
            raise ValueError("overlap must be >= 0")
        if build not in ("fast", "legacy"):
            raise ValueError(f"unknown build mode {build!r}")
        if build == "fast" and not A.has_canonical_format:
            # The fast split assumes sorted, duplicate-free rows — the same
            # canonical form the legacy CSC round-trip produces implicitly.
            A = A.copy()
            A.sum_duplicates()

        self.A = A
        self.b = b
        self.N = N
        self.line = line
        self.nblocks = nblocks
        self.overlap = overlap

        # Balanced strip partition in whole lines.
        base, extra = divmod(nlines, nblocks)
        widths = [base + (1 if k < extra else 0) for k in range(nblocks)]
        if overlap > 0 and nblocks > 1 and overlap + 1 > min(widths):
            raise ValueError(
                f"overlap={overlap} too large for strip width {min(widths)} lines"
            )
        starts_l = np.concatenate([[0], np.cumsum(widths)])

        self.blocks: list[BlockInfo] = []
        for k in range(nblocks):
            own_s = int(starts_l[k]) * line
            own_e = int(starts_l[k + 1]) * line
            ext_s = max(0, own_s - overlap * line)
            ext_e = min(N, own_e + overlap * line)
            if build == "fast":
                A_local, ext_cols, B_coupling = _split_rows_fast(A, ext_s, ext_e)
            else:
                A_local, ext_cols, B_coupling = _split_rows_legacy(A, N, ext_s, ext_e)
            info = BlockInfo(
                index=k,
                own_start=own_s,
                own_end=own_e,
                ext_start=ext_s,
                ext_end=ext_e,
                A_local=A_local,
                ext_cols=ext_cols,
                B_coupling=B_coupling,
                b_local=b[ext_s:ext_e].copy(),
            )
            self.blocks.append(info)

        # Wire up who supplies each external component and what each block
        # must send.  Ownership is unambiguous (owned ranges partition [0,N)).
        owner_of = np.empty(N, dtype=int)
        for blk in self.blocks:
            owner_of[blk.own_start : blk.own_end] = blk.index
        for blk in self.blocks:
            if blk.ext_cols.size == 0:
                continue
            owners = owner_of[blk.ext_cols]
            for src in np.unique(owners):
                positions = np.where(owners == src)[0]
                blk.ext_sources[int(src)] = positions
                needed_globals = blk.ext_cols[positions]
                src_blk = self.blocks[int(src)]
                src_blk.send_map[blk.index] = needed_globals
                src_blk.send_local[blk.index] = needed_globals - src_blk.ext_start
        for blk in self.blocks:
            blk._index_slices()

    # -- global assembly helpers ---------------------------------------------

    def neighbours(self, k: int) -> list[int]:
        """Blocks that block ``k`` exchanges data with (symmetric)."""
        blk = self.blocks[k]
        return sorted(set(blk.ext_sources) | set(blk.send_map))

    def assemble(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Stitch a global vector from each block's owned components."""
        if len(locals_) != self.nblocks:
            raise ValueError("need one local vector per block")
        x = np.zeros(self.N)
        for blk, xl in zip(self.blocks, locals_):
            if xl.shape != (blk.n_ext,):
                raise ValueError(
                    f"block {blk.index}: local vector has shape {xl.shape}, "
                    f"expected ({blk.n_ext},)"
                )
            x[blk.own_start : blk.own_end] = blk.owned_of(xl)
        return x

    def exchange_volume(self, k: int) -> int:
        """Total components block ``k`` sends per outer iteration.

        For the 5-point Laplacian this is ``n`` per neighbour, independent
        of the overlap — the paper's "exchanged data are constant".
        """
        return int(sum(v.size for v in self.blocks[k].send_map.values()))

    def local_rhs(
        self, k: int, ext_values: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``b_ext - B @ ext_values`` for block ``k``.

        With ``out`` the result is written into the given buffer (bitwise
        identical to the allocating form); without it a fresh array is
        returned, as before.
        """
        blk = self.blocks[k]
        if blk.ext_cols.size == 0:
            if out is None:
                return blk.b_local.copy()
            np.copyto(out, blk.b_local)
            return out
        if ext_values.shape != (blk.ext_cols.size,):
            raise ValueError("ext_values shape mismatch")
        if out is None:
            return blk.b_local - blk.B_coupling @ ext_values
        from repro.numerics.cg import csr_matvec_into

        csr_matvec_into(blk.B_coupling, ext_values, out)
        np.subtract(blk.b_local, out, out=out)
        return out


def _split_rows_legacy(A: sp.csr_matrix, N: int, ext_s: int, ext_e: int):
    """Original construction: slice rows, convert to CSC, slice columns."""
    ext_range = np.arange(ext_s, ext_e)
    A_rows = A[ext_s:ext_e, :].tocsc()
    inside = np.zeros(N, dtype=bool)
    inside[ext_range] = True
    col_nnz = np.diff(A_rows.indptr) > 0
    ext_cols = np.where(col_nnz & ~inside)[0]
    return (
        A_rows[:, ext_range].tocsr(),
        ext_cols,
        A_rows[:, ext_cols].tocsr(),
    )


def _split_rows_fast(A: sp.csr_matrix, ext_s: int, ext_e: int):
    """Split rows [ext_s, ext_e) into (A_local, ext_cols, B_coupling).

    Works directly on the CSR arrays: one boolean mask separates each
    stored entry into the diagonal block (columns inside the row range) and
    the coupling block (columns outside), and both CSR matrices are built
    with the raw ``(data, indices, indptr)`` constructor.  Since the parent
    matrix is canonical, within-row column order is preserved and the
    results are canonical too — value-identical to the legacy CSC slicing.
    """
    indptr, indices, data = A.indptr, A.indices, A.data
    start, end = int(indptr[ext_s]), int(indptr[ext_e])
    cols = indices[start:end]
    vals = data[start:end]
    nloc = ext_e - ext_s
    row_counts = np.diff(indptr[ext_s : ext_e + 1])
    row_ids = np.repeat(np.arange(nloc), row_counts)

    inside = (cols >= ext_s) & (cols < ext_e)

    in_rows = row_ids[inside]
    indptr_in = np.zeros(nloc + 1, dtype=indptr.dtype)
    np.cumsum(np.bincount(in_rows, minlength=nloc), out=indptr_in[1:])
    A_local = sp.csr_matrix(
        (vals[inside], (cols[inside] - ext_s).astype(indptr.dtype, copy=False),
         indptr_in),
        shape=(nloc, nloc),
    )

    outside = ~inside
    out_cols_g = cols[outside]
    ext_cols = np.unique(out_cols_g).astype(np.intp, copy=False)
    out_rows = row_ids[outside]
    indptr_out = np.zeros(nloc + 1, dtype=indptr.dtype)
    np.cumsum(np.bincount(out_rows, minlength=nloc), out=indptr_out[1:])
    B_coupling = sp.csr_matrix(
        (vals[outside],
         np.searchsorted(ext_cols, out_cols_g).astype(indptr.dtype, copy=False),
         indptr_out),
        shape=(nloc, ext_cols.size),
    )
    return A_local, ext_cols, B_coupling


# -- process-wide decomposition memo ----------------------------------------


def _freeze_array(a: np.ndarray) -> None:
    a.flags.writeable = False


def _freeze_csr(m: sp.csr_matrix) -> None:
    _freeze_array(m.data)
    _freeze_array(m.indices)
    _freeze_array(m.indptr)


def freeze_decomposition(decomp: BlockDecomposition) -> BlockDecomposition:
    """Make every array of ``decomp`` read-only (shared-safe) and return it."""
    _freeze_csr(decomp.A)
    _freeze_array(decomp.b)
    for blk in decomp.blocks:
        _freeze_csr(blk.A_local)
        _freeze_csr(blk.B_coupling)
        _freeze_array(blk.b_local)
        _freeze_array(blk.ext_cols)
        for mapping in (blk.ext_sources, blk.send_map, blk.send_local):
            for arr in mapping.values():
                _freeze_array(arr)
    return decomp


class DecompositionCache:
    """Process-wide memo of frozen :class:`BlockDecomposition` builds.

    Every task of an application — and every churn replacement — rebuilds
    the same global system and decomposition from the application
    parameters; this cache amortizes P tasks + R recoveries to one build.
    Entries are frozen on insertion, so sharing is safe: any attempt to
    mutate a cached operator raises instead of corrupting sibling tasks.
    """

    def __init__(self):
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key, builder) -> BlockDecomposition:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        entry = freeze_decomposition(builder())
        self._entries[key] = entry
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses}


#: The process-wide instance; cleared by ``repro.util.hotpath.clear_caches``.
DECOMPOSITION_CACHE = DecompositionCache()
register_cache(DECOMPOSITION_CACHE.clear)


def shared_decomposition(
    problem_key: tuple,
    build_system,
    *,
    nblocks: int,
    line: int = 1,
    overlap: int = 0,
    enabled: bool | None = None,
) -> BlockDecomposition:
    """Memoized decomposition build for task setup/recovery.

    ``problem_key`` identifies the global system (e.g. ``("poisson",
    "manufactured", n)``); together with ``nblocks``/``line``/``overlap`` it
    forms the cache key.  ``build_system()`` must deterministically return
    the global ``(A, b)`` for that key — it only runs on a miss.

    ``enabled=None`` follows the process-wide
    :data:`~repro.util.hotpath.HOTPATH` flag.  When disabled, a private
    *legacy-build* decomposition is returned (fresh, unfrozen, per caller)
    — the exact pre-cache behaviour, used as the benchmark's bypass arm.
    """
    if enabled is None:
        enabled = HOTPATH.decomposition_cache
    if not enabled:
        A, b = build_system()
        return BlockDecomposition(A, b, nblocks=nblocks, line=line,
                                  overlap=overlap, build="legacy")

    key = (problem_key, nblocks, line, overlap)

    def builder() -> BlockDecomposition:
        A, b = build_system()
        return BlockDecomposition(A, b, nblocks=nblocks, line=line,
                                  overlap=overlap, build="fast")

    return DECOMPOSITION_CACHE.get_or_build(key, builder)
