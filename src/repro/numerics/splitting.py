"""Block decomposition with component overlapping (paper §6).

The grid's ``n²`` unknowns are split into horizontal strips of whole grid
lines, one strip ("block") per processor.  Each block *owns* a contiguous
range of grid lines; with overlap ``o`` it additionally *computes* ``o``
lines on each side (components computed by two processors).  Crucially —
and this is the paper's point — the data exchanged per neighbour stays **one
grid line (n components)** regardless of the overlap: the line a block needs
is the boundary line of its *extended* region, which lies inside the
neighbour's owned region as long as ``o + 1 ≤`` the neighbour's strip width.

The decomposition is derived purely from the sparse matrix: the external
components a block needs are exactly the columns outside its extended range
that carry nonzeros in its rows.  For the 5-point Laplacian these are the
one grid line above and below; the machinery is generic, so other banded
operators (e.g. the implicit heat-equation matrix) decompose identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["BlockInfo", "BlockDecomposition"]


@dataclass
class BlockInfo:
    """Everything one processor needs for its local sub-iterations."""

    index: int
    #: owned global index range [own_start, own_end)
    own_start: int
    own_end: int
    #: extended (computed) global range [ext_start, ext_end)
    ext_start: int
    ext_end: int
    #: local sub-matrix A[ext, ext] (CSR)
    A_local: sp.csr_matrix
    #: global column indices outside the extended range with nonzeros in
    #: this block's rows — the components that must come from neighbours
    ext_cols: np.ndarray
    #: coupling matrix A[ext, ext_cols] (CSR): local_rhs = b_ext - B @ ext_vals
    B_coupling: sp.csr_matrix
    #: local right-hand side b[ext]
    b_local: np.ndarray
    #: map neighbour block index -> (positions in ext_cols owned by them)
    ext_sources: dict[int, np.ndarray] = field(default_factory=dict)
    #: map neighbour block index -> global indices this block must SEND them
    send_map: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_owned(self) -> int:
        return self.own_end - self.own_start

    @property
    def n_ext(self) -> int:
        return self.ext_end - self.ext_start

    def owned_of(self, x_local: np.ndarray) -> np.ndarray:
        """Extract the owned components from an extended-range local vector."""
        lo = self.own_start - self.ext_start
        return x_local[lo : lo + self.n_owned]

    def values_to_send(self, x_local: np.ndarray, neighbour: int) -> np.ndarray:
        """The components destined for ``neighbour`` (one grid line each)."""
        idx = self.send_map[neighbour]
        return x_local[idx - self.ext_start]


class BlockDecomposition:
    """Split ``A x = b`` into ``nblocks`` strip blocks with overlap.

    Parameters
    ----------
    A, b:
        The global system (CSR / dense vector).
    nblocks:
        Number of processors.
    line:
        Size of one indivisible line of components (the paper's ``n``:
        block boundaries are multiples of a discretized grid line).  Use 1
        for unstructured systems.
    overlap:
        Number of *lines* computed by two neighbouring processors on each
        side.  Must leave every extended boundary inside the neighbour's
        owned range (``overlap + 1 <= min strip width in lines``).
    """

    def __init__(
        self,
        A: sp.spmatrix,
        b: np.ndarray,
        nblocks: int,
        line: int = 1,
        overlap: int = 0,
    ):
        A = A.tocsr()
        N = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError("A must be square")
        b = np.asarray(b, dtype=float)
        if b.shape != (N,):
            raise ValueError("b shape mismatch")
        if N % line != 0:
            raise ValueError(f"system size {N} is not a multiple of line={line}")
        nlines = N // line
        if not 1 <= nblocks <= nlines:
            raise ValueError(f"nblocks must be in [1, {nlines}]")
        if overlap < 0:
            raise ValueError("overlap must be >= 0")

        self.A = A
        self.b = b
        self.N = N
        self.line = line
        self.nblocks = nblocks
        self.overlap = overlap

        # Balanced strip partition in whole lines.
        base, extra = divmod(nlines, nblocks)
        widths = [base + (1 if k < extra else 0) for k in range(nblocks)]
        if overlap > 0 and nblocks > 1 and overlap + 1 > min(widths):
            raise ValueError(
                f"overlap={overlap} too large for strip width {min(widths)} lines"
            )
        starts_l = np.concatenate([[0], np.cumsum(widths)])

        self.blocks: list[BlockInfo] = []
        for k in range(nblocks):
            own_s = int(starts_l[k]) * line
            own_e = int(starts_l[k + 1]) * line
            ext_s = max(0, own_s - overlap * line)
            ext_e = min(N, own_e + overlap * line)
            ext_range = np.arange(ext_s, ext_e)
            A_rows = A[ext_s:ext_e, :].tocsc()
            inside = np.zeros(N, dtype=bool)
            inside[ext_range] = True
            col_nnz = np.diff(A_rows.indptr) > 0
            ext_cols = np.where(col_nnz & ~inside)[0]
            info = BlockInfo(
                index=k,
                own_start=own_s,
                own_end=own_e,
                ext_start=ext_s,
                ext_end=ext_e,
                A_local=A_rows[:, ext_range].tocsr(),
                ext_cols=ext_cols,
                B_coupling=A_rows[:, ext_cols].tocsr(),
                b_local=b[ext_s:ext_e].copy(),
            )
            self.blocks.append(info)

        # Wire up who supplies each external component and what each block
        # must send.  Ownership is unambiguous (owned ranges partition [0,N)).
        owner_of = np.empty(N, dtype=int)
        for blk in self.blocks:
            owner_of[blk.own_start : blk.own_end] = blk.index
        for blk in self.blocks:
            if blk.ext_cols.size == 0:
                continue
            owners = owner_of[blk.ext_cols]
            for src in np.unique(owners):
                positions = np.where(owners == src)[0]
                blk.ext_sources[int(src)] = positions
                needed_globals = blk.ext_cols[positions]
                self.blocks[int(src)].send_map[blk.index] = needed_globals

    # -- global assembly helpers ---------------------------------------------

    def neighbours(self, k: int) -> list[int]:
        """Blocks that block ``k`` exchanges data with (symmetric)."""
        blk = self.blocks[k]
        return sorted(set(blk.ext_sources) | set(blk.send_map))

    def assemble(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Stitch a global vector from each block's owned components."""
        if len(locals_) != self.nblocks:
            raise ValueError("need one local vector per block")
        x = np.zeros(self.N)
        for blk, xl in zip(self.blocks, locals_):
            if xl.shape != (blk.n_ext,):
                raise ValueError(
                    f"block {blk.index}: local vector has shape {xl.shape}, "
                    f"expected ({blk.n_ext},)"
                )
            x[blk.own_start : blk.own_end] = blk.owned_of(xl)
        return x

    def exchange_volume(self, k: int) -> int:
        """Total components block ``k`` sends per outer iteration.

        For the 5-point Laplacian this is ``n`` per neighbour, independent
        of the overlap — the paper's "exchanged data are constant".
        """
        return int(sum(v.size for v in self.blocks[k].send_map.values()))

    def local_rhs(self, k: int, ext_values: np.ndarray) -> np.ndarray:
        """``b_ext - B @ ext_values`` for block ``k``."""
        blk = self.blocks[k]
        if blk.ext_cols.size == 0:
            return blk.b_local.copy()
        if ext_values.shape != (blk.ext_cols.size,):
            raise ValueError("ext_values shape mismatch")
        return blk.b_local - blk.B_coupling @ ext_values
