"""Convection–diffusion: a *nonsymmetric* M-matrix problem.

    -ε Δu + w · ∇u = f     on the unit square, Dirichlet boundary,

discretized with central differences for the diffusion and **first-order
upwind** differences for the convection.  Upwinding is what preserves the
M-matrix sign structure for any velocity ``w`` (central convection would
break it once the cell Péclet number exceeds 1) — so the asynchronous
convergence theory the paper relies on (§1) still applies, while the
operator is genuinely nonsymmetric and needs BiCGSTAB rather than CG.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["convection_diffusion_matrix", "ConvectionDiffusion2D"]


def convection_diffusion_matrix(
    n: int,
    eps: float = 1.0,
    wx: float = 0.0,
    wy: float = 0.0,
) -> sp.csr_matrix:
    """Upwind 5-point operator on the ``n × n`` interior grid.

    Row-major ordering (grid row i, column j → i·n + j); grid row index i
    is the x-coordinate direction, matching :mod:`repro.numerics.poisson`.
    """
    if n < 1:
        raise ValueError("grid size n must be >= 1")
    if eps <= 0:
        raise ValueError("diffusion coefficient eps must be positive")
    h = 1.0 / (n + 1)
    d = eps / (h * h)

    # upwind convection splits |w|/h onto the upstream neighbour
    wxp, wxm = max(wx, 0.0) / h, max(-wx, 0.0) / h  # flow in +x / -x
    wyp, wym = max(wy, 0.0) / h, max(-wy, 0.0) / h

    diag = (4.0 * d + wxp + wxm + wyp + wym) * np.ones(n * n)
    # x-direction couplings connect different GRID ROWS: offsets ±n
    upper_x = (-d - wxm) * np.ones(n * n - n)   # u_{i+1,j}
    lower_x = (-d - wxp) * np.ones(n * n - n)   # u_{i-1,j}
    # y-direction couplings are offsets ±1 within a grid row
    upper_y = (-d - wym) * np.ones(n * n - 1)   # u_{i,j+1}
    lower_y = (-d - wyp) * np.ones(n * n - 1)   # u_{i,j-1}
    mask = np.arange(1, n * n) % n == 0         # no wrap across grid rows
    upper_y[mask] = 0.0
    lower_y[mask] = 0.0

    return sp.diags(
        [diag, upper_y, lower_y, upper_x, lower_x],
        [0, 1, -1, n, -n],
        format="csr",
    )


class ConvectionDiffusion2D:
    """An assembled problem with a discretely-exact manufactured solution."""

    def __init__(self, n: int, eps: float = 1.0, wx: float = 1.0, wy: float = 0.5):
        self.n = n
        self.eps = eps
        self.wx = wx
        self.wy = wy
        self.A = convection_diffusion_matrix(n, eps, wx, wy)
        h = 1.0 / (n + 1)
        xs = (np.arange(n) + 1) * h
        X, Y = np.meshgrid(xs, xs, indexing="ij")
        self.u_star = (np.sin(np.pi * X) * np.sin(np.pi * Y)).reshape(n * n)
        self.b = self.A @ self.u_star  # discrete-exact right-hand side

    @property
    def size(self) -> int:
        return self.n * self.n

    def solve_direct(self) -> np.ndarray:
        from scipy.sparse.linalg import spsolve

        return spsolve(self.A.tocsc(), self.b)

    def residual_norm(self, x: np.ndarray) -> float:
        r = self.b - self.A @ x
        return float(np.linalg.norm(r) / max(np.linalg.norm(self.b), 1e-300))
