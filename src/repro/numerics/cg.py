"""Sparse Conjugate Gradient — the paper's inner solver (§6), from scratch.

Plain CG (optionally Jacobi-preconditioned) on a symmetric positive-definite
sparse matrix.  Returns a :class:`CgResult` carrying the iteration count and
an **estimated flop count**, which is what the simulator charges as compute
time for a daemon's local solve — so a larger local block really does take
proportionally longer simulated time, reproducing the paper's ratio (4)
(compute-per-iteration / communication-per-iteration) mechanics.

Two execution paths produce **bitwise-identical** results:

* :func:`conjugate_gradient` — the original allocating loop (kept verbatim
  as the reference implementation and the benchmark's cache-bypass arm);
* :class:`CgOperator` — per-matrix cached state (raw CSR arrays, Jacobi
  diagonal, preallocated work vectors) whose :meth:`CgOperator.solve` runs
  the same arithmetic without per-call allocations.  Identical floating
  point operations in identical order ⇒ identical iterates, iteration
  counts, residuals and flop charges — simulated time cannot change.

:meth:`CgOperator.solve_direct` additionally offers an opt-in cached
LU-factorization path (``scipy.sparse.linalg.splu``) for small blocks.  It
returns the same :class:`CgResult` record with an honest direct-solve flop
estimate, but it is a *different numerical method* (different round-off,
iteration count 1), so it is never enabled by default and is excluded from
bitwise comparisons.
"""

from __future__ import annotations

import sys
# IEEE 754 requires correctly-rounded sqrt, so math.sqrt and np.sqrt agree
# bitwise on binary64 — and the math version skips the ufunc dispatch that
# dominates scalar-sqrt cost in the per-iteration residual check
from math import sqrt as _sqrt
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError

try:  # scipy's C matvec kernel: y += A @ x without allocating
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - scipy layout change
    _csr_matvec = None

__all__ = ["CgResult", "conjugate_gradient", "cg_flops_estimate",
           "CgOperator", "block_operator", "csr_matvec_into",
           "direct_flops_estimate"]


@dataclass
class CgResult:
    """Outcome of one CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    flops: float
    residual_history: list[float] = field(default_factory=list)


def cg_flops_estimate(nnz: int, nrows: int, iterations: int) -> float:
    """Standard per-iteration cost: one matvec (2·nnz) + 5 vector ops (10·n)."""
    return float(iterations) * (2.0 * nnz + 10.0 * nrows) + 2.0 * nnz


def direct_flops_estimate(nnz_lu: int, nrows: int) -> float:
    """Forward+backward triangular solve: ~2 flops per stored LU entry."""
    return 2.0 * float(nnz_lu) + 2.0 * float(nrows)


def csr_matvec_into(A: sp.csr_matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = A @ x`` without allocating, bitwise-identical to ``A @ x``.

    scipy's ``@`` allocates a zero vector and accumulates with the same C
    kernel; calling the kernel on a zeroed caller buffer performs the exact
    same floating-point operations.
    """
    if _csr_matvec is None:  # pragma: no cover - scipy layout change
        np.copyto(out, A @ x)
        return out
    out[:] = 0.0
    _csr_matvec(A.shape[0], A.shape[1], A.indptr, A.indices, A.data, x, out)
    return out


def conjugate_gradient(
    A: sp.spmatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    jacobi_precondition: bool = False,
    raise_on_fail: bool = False,
    keep_history: bool = False,
) -> CgResult:
    """Solve ``A x = b`` for SPD sparse ``A``.

    Convergence test: ``||r|| <= tol * ||b||`` (or absolute when b = 0).

    Parameters
    ----------
    x0:
        Warm start — the asynchronous outer iteration passes the previous
        local solution, which is why inner solves get cheap near the fixed
        point.
    jacobi_precondition:
        Divide by the diagonal — cheap and preserves the M-matrix structure.
    raise_on_fail:
        Raise :class:`~repro.errors.ConvergenceError` instead of returning a
        non-converged result.
    """
    A = A.tocsr() if sp.issparse(A) else sp.csr_matrix(A)
    nrows = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    b = np.asarray(b, dtype=float)
    if b.shape != (nrows,):
        raise ValueError(f"b has shape {b.shape}, expected ({nrows},)")
    if max_iter is None:
        max_iter = max(10 * nrows, 100)

    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=float, copy=True)
    if x.shape != (nrows,):
        raise ValueError("x0 shape mismatch")

    b_norm = float(np.linalg.norm(b))
    stop = tol * b_norm if b_norm > 0 else tol

    if jacobi_precondition:
        d = A.diagonal()
        if (d <= 0).any():
            raise ValueError("Jacobi preconditioner needs a positive diagonal")
        inv_d = 1.0 / d
        apply_m = lambda r: inv_d * r  # noqa: E731
    else:
        apply_m = lambda r: r  # noqa: E731

    r = b - A @ x
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    res = float(np.linalg.norm(r))
    history = [res] if keep_history else []

    it = 0
    while res > stop and it < max_iter:
        Ap = A @ p
        pAp = float(p @ Ap)
        if pAp <= 0.0:
            # Not SPD along this direction: bail out rather than diverge.
            if raise_on_fail:
                raise ConvergenceError("CG breakdown: non-positive curvature")
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r))
        if keep_history:
            history.append(res)
        z = apply_m(r)
        rz_new = float(r @ z)
        beta = rz_new / rz if rz > 0 else 0.0
        p = z + beta * p
        rz = rz_new
        it += 1

    converged = res <= stop
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {max_iter} iterations (residual {res:.3e})"
        )
    return CgResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=res,
        flops=cg_flops_estimate(A.nnz, nrows, it),
        residual_history=history,
    )


class CgOperator:
    """Per-matrix cached solver state.

    Holds the CSR arrays, the (lazily computed) Jacobi diagonal, a lazily
    cached LU factorization, and preallocated work vectors, so repeated
    solves against the same matrix allocate only their output ``x``.

    The solve arithmetic replicates :func:`conjugate_gradient` operation by
    operation (same kernels, same order), so results are bitwise identical
    — callers may switch between the two freely without perturbing
    simulated time.  Work buffers are scratch only: no state survives a
    solve, so one operator may serve many tasks sequentially.
    """

    def __init__(self, A: sp.spmatrix):
        A = A.tocsr() if sp.issparse(A) else sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError("A must be square")
        self.A = A
        self.n = A.shape[0]
        self.nnz = A.nnz
        n = self.n
        self._r = np.empty(n)
        self._p = np.empty(n)
        self._Ap = np.empty(n)
        self._tmp = np.empty(n)
        self._z: np.ndarray | None = None  # allocated on first preconditioned solve
        self._inv_diag: np.ndarray | None = None
        self._lu = None
        self._lu_nnz = 0
        #: prebound CSR kernel arguments: :meth:`solve` runs one matvec per
        #: iteration on a small block, where re-fetching ``A.indptr`` etc.
        #: through the wrapper costs as much as the multiply itself
        self._mv = (
            None if _csr_matvec is None
            else (A.shape[0], A.shape[1], A.indptr, A.indices, A.data)
        )
        #: recycled solution buffers for ``x0 is None`` solves (see
        #: :meth:`_fresh_x`); bounded so escaped buffers cannot pile up
        self._x_pool: list[np.ndarray] = []

    # -- cached pieces -------------------------------------------------------

    @property
    def inv_diag(self) -> np.ndarray:
        if self._inv_diag is None:
            d = self.A.diagonal()
            if (d <= 0).any():
                raise ValueError("Jacobi preconditioner needs a positive diagonal")
            self._inv_diag = 1.0 / d
        return self._inv_diag

    def factorization(self):
        """The cached ``splu`` factorization (built on first use)."""
        if self._lu is None:
            from scipy.sparse.linalg import splu

            self._lu = splu(self.A.tocsc())
            self._lu_nnz = int(self._lu.L.nnz + self._lu.U.nnz)
        return self._lu

    def matvec(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = A @ x`` into a caller buffer (bitwise-identical)."""
        return csr_matvec_into(self.A, x, out)

    _X_POOL_MAX = 4

    def _fresh_x(self) -> np.ndarray:
        """A zeroed solution buffer, recycled across solves when safe.

        Callers retain the returned ``x`` (it becomes ``CgResult.x``, the
        task's live state, possibly the base of in-flight zero-copy
        payload views), so a slot is reused only when *nothing* outside
        the pool still references it — checked by refcount, which makes
        recycling invisible: a free slot refilled with ``fill(0.0)`` is
        bit-for-bit the ``np.zeros`` it replaces.
        """
        pool = self._x_pool
        for slot in pool:
            # refs: pool list + loop binding + getrefcount argument
            if sys.getrefcount(slot) == 3 and slot.flags.writeable:
                slot.fill(0.0)
                return slot
        x = np.zeros(self.n)
        if len(pool) < self._X_POOL_MAX:
            pool.append(x)
        return x

    # -- solves --------------------------------------------------------------

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tol: float = 1e-10,
        max_iter: int | None = None,
        jacobi_precondition: bool = False,
        raise_on_fail: bool = False,
        keep_history: bool = False,
    ) -> CgResult:
        """CG solve, bitwise-identical to :func:`conjugate_gradient`."""
        n = self.n
        if b.shape != (n,):
            raise ValueError(f"b has shape {b.shape}, expected ({n},)")
        if max_iter is None:
            max_iter = max(10 * n, 100)

        x = self._fresh_x() if x0 is None else np.array(x0, dtype=float, copy=True)
        if x.shape != (n,):
            raise ValueError("x0 shape mismatch")

        b_norm = _sqrt(b.dot(b))
        stop = tol * b_norm if b_norm > 0 else tol

        r, p, Ap, tmp = self._r, self._p, self._Ap, self._tmp
        # inlined csr_matvec_into (bitwise-identical: same zero fill, same
        # C kernel) — the wrapper's per-call attribute walk is measurable
        # at swarm scale, where blocks are ~100 rows and solves number 10^5
        mv = self._mv
        if mv is not None:
            mv_rows, mv_cols, mv_indptr, mv_indices, mv_data = mv
        if x0 is None:
            # r = b - A @ 0: elementwise b[i] - 0.0 == b[i] bitwise.
            np.copyto(r, b)
        else:
            if mv is not None:
                Ap.fill(0.0)
                _csr_matvec(mv_rows, mv_cols, mv_indptr, mv_indices,
                            mv_data, x, Ap)
            else:  # pragma: no cover - scipy layout change
                self.matvec(x, Ap)
            np.subtract(b, Ap, out=r)

        precond = jacobi_precondition
        if precond:
            inv_d = self.inv_diag
            if self._z is None:
                self._z = np.empty(n)
            z = self._z
            np.multiply(inv_d, r, out=z)
            rz = float(r.dot(z))
            res = _sqrt(r.dot(r))
        else:
            z = r  # the identity preconditioner aliases z to r
            rz = float(r.dot(r))
            res = _sqrt(rz)
        np.copyto(p, z)
        history = [res] if keep_history else []

        it = 0
        while res > stop and it < max_iter:
            if mv is not None:
                Ap.fill(0.0)
                _csr_matvec(mv_rows, mv_cols, mv_indptr, mv_indices,
                            mv_data, p, Ap)
            else:  # pragma: no cover - scipy layout change
                self.matvec(p, Ap)
            pAp = float(p.dot(Ap))
            if pAp <= 0.0:
                if raise_on_fail:
                    raise ConvergenceError("CG breakdown: non-positive curvature")
                break
            alpha = rz / pAp
            # x += alpha * p ; r -= alpha * Ap  (via the scratch buffer)
            np.multiply(p, alpha, out=tmp)
            np.add(x, tmp, out=x)
            np.multiply(Ap, alpha, out=tmp)
            np.subtract(r, tmp, out=r)
            if precond:
                res = _sqrt(r.dot(r))
                np.multiply(inv_d, r, out=z)
                rz_new = float(r.dot(z))
            else:
                rz_new = float(r.dot(r))
                res = _sqrt(rz_new)
            if keep_history:
                history.append(res)
            beta = rz_new / rz if rz > 0 else 0.0
            # p = z + beta * p: scale-then-add reads z (== r unpreconditioned)
            np.multiply(p, beta, out=p)
            np.add(p, z, out=p)
            rz = rz_new
            it += 1

        converged = res <= stop
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"CG did not converge in {max_iter} iterations (residual {res:.3e})"
            )
        return CgResult(
            x=x,
            converged=converged,
            iterations=it,
            residual_norm=res,
            flops=cg_flops_estimate(self.nnz, n, it),
            residual_history=history,
        )

    def solve_direct(self, b: np.ndarray, tol: float = 1e-10) -> CgResult:
        """Solve via the cached LU factorization (opt-in, small blocks).

        A different numerical method than CG: one triangular solve pair,
        different round-off.  The returned :class:`CgResult` reports
        ``iterations=1`` and an honest direct-solve flop estimate, so the
        simulator's compute-time model stays meaningful — but enabling this
        path *does* change iteration counts and simulated time relative to
        CG, which is why it is never a default.
        """
        lu = self.factorization()
        x = lu.solve(b)
        return self.direct_result(x, b, tol)

    def direct_result(self, x: np.ndarray, b: np.ndarray,
                      tol: float) -> CgResult:
        """Package a direct-solve solution ``x`` of ``A x = b`` as a
        :class:`CgResult` with the same convergence diagnostics and flop
        charge :meth:`solve_direct` produces — shared with the batched
        multi-RHS path of :mod:`repro.compute` so both report identically.
        """
        # honest convergence diagnostics: one extra (uncharged) matvec
        self.matvec(x, self._Ap)
        np.subtract(b, self._Ap, out=self._r)
        res = _sqrt(self._r.dot(self._r))
        b_norm = _sqrt(b.dot(b))
        stop = tol * b_norm if b_norm > 0 else tol
        return CgResult(
            x=x,
            converged=res <= stop,
            iterations=1,
            residual_norm=res,
            flops=direct_flops_estimate(self._lu_nnz, self.n),
            residual_history=[],
        )

    @property
    def lu_nnz(self) -> int:
        """Stored LU entries (factorizing on first use) — the direct
        path's analytic flop basis, known *before* a solve runs."""
        self.factorization()
        return self._lu_nnz


def block_operator(blk) -> CgOperator:
    """The cached :class:`CgOperator` for a decomposition block.

    Stored in the block's ``op_cache`` slot, so every task (and every churn
    replacement) mapped onto the same shared block reuses one operator.
    """
    op = blk.op_cache.get("cg")
    if op is None:
        op = CgOperator(blk.A_local)
        blk.op_cache["cg"] = op
    return op
