"""Sparse Conjugate Gradient — the paper's inner solver (§6), from scratch.

Plain CG (optionally Jacobi-preconditioned) on a symmetric positive-definite
sparse matrix.  Returns a :class:`CgResult` carrying the iteration count and
an **estimated flop count**, which is what the simulator charges as compute
time for a daemon's local solve — so a larger local block really does take
proportionally longer simulated time, reproducing the paper's ratio (4)
(compute-per-iteration / communication-per-iteration) mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError

__all__ = ["CgResult", "conjugate_gradient", "cg_flops_estimate"]


@dataclass
class CgResult:
    """Outcome of one CG solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    flops: float
    residual_history: list[float] = field(default_factory=list)


def cg_flops_estimate(nnz: int, nrows: int, iterations: int) -> float:
    """Standard per-iteration cost: one matvec (2·nnz) + 5 vector ops (10·n)."""
    return float(iterations) * (2.0 * nnz + 10.0 * nrows) + 2.0 * nnz


def conjugate_gradient(
    A: sp.spmatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    jacobi_precondition: bool = False,
    raise_on_fail: bool = False,
    keep_history: bool = False,
) -> CgResult:
    """Solve ``A x = b`` for SPD sparse ``A``.

    Convergence test: ``||r|| <= tol * ||b||`` (or absolute when b = 0).

    Parameters
    ----------
    x0:
        Warm start — the asynchronous outer iteration passes the previous
        local solution, which is why inner solves get cheap near the fixed
        point.
    jacobi_precondition:
        Divide by the diagonal — cheap and preserves the M-matrix structure.
    raise_on_fail:
        Raise :class:`~repro.errors.ConvergenceError` instead of returning a
        non-converged result.
    """
    A = A.tocsr() if sp.issparse(A) else sp.csr_matrix(A)
    nrows = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    b = np.asarray(b, dtype=float)
    if b.shape != (nrows,):
        raise ValueError(f"b has shape {b.shape}, expected ({nrows},)")
    if max_iter is None:
        max_iter = max(10 * nrows, 100)

    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=float, copy=True)
    if x.shape != (nrows,):
        raise ValueError("x0 shape mismatch")

    b_norm = float(np.linalg.norm(b))
    stop = tol * b_norm if b_norm > 0 else tol

    if jacobi_precondition:
        d = A.diagonal()
        if (d <= 0).any():
            raise ValueError("Jacobi preconditioner needs a positive diagonal")
        inv_d = 1.0 / d
        apply_m = lambda r: inv_d * r  # noqa: E731
    else:
        apply_m = lambda r: r  # noqa: E731

    r = b - A @ x
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    res = float(np.linalg.norm(r))
    history = [res] if keep_history else []

    it = 0
    while res > stop and it < max_iter:
        Ap = A @ p
        pAp = float(p @ Ap)
        if pAp <= 0.0:
            # Not SPD along this direction: bail out rather than diverge.
            if raise_on_fail:
                raise ConvergenceError("CG breakdown: non-positive curvature")
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res = float(np.linalg.norm(r))
        if keep_history:
            history.append(res)
        z = apply_m(r)
        rz_new = float(r @ z)
        beta = rz_new / rz if rz > 0 else 0.0
        p = z + beta * p
        rz = rz_new
        it += 1

    converged = res <= stop
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"CG did not converge in {max_iter} iterations (residual {res:.3e})"
        )
    return CgResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=res,
        flops=cg_flops_estimate(A.nnz, nrows, it),
        residual_history=history,
    )
