"""``repro.numerics`` — the scientific substrate of the reproduction.

Implements §6 of the paper and the theory it leans on:

* :mod:`~repro.numerics.poisson` — 2-D Poisson discretization on a uniform
  Cartesian grid with Dirichlet boundary conditions (5-point stencil →
  ``A x = b`` with ``A`` a 5-diagonal M-matrix of size ``n² × n²``);
* :mod:`~repro.numerics.matrix` — M-matrix and weak-regular-splitting
  checks, iteration matrices, spectral radii (the asynchronous convergence
  condition is ``ρ(|T|) < 1``);
* :mod:`~repro.numerics.cg` — a from-scratch sparse Conjugate Gradient (the
  paper's inner solver), with iteration/flop accounting used by the
  simulator's compute-time model;
* :mod:`~repro.numerics.splitting` — block decomposition with component
  **overlapping**; exchanged data per neighbour is one grid line
  (``n`` components) regardless of the overlap, as the paper requires;
* :mod:`~repro.numerics.jacobi` — sequential reference solvers:
  synchronous block-Jacobi and a chaotic (asynchronous) relaxation with
  bounded delays, both used as ground truth by the runtime tests.
"""

from repro.numerics.poisson import Poisson2D, poisson_matrix, poisson_rhs
from repro.numerics.matrix import (
    is_m_matrix,
    is_weak_regular_splitting,
    jacobi_iteration_matrix,
    spectral_radius,
    async_convergence_radius,
)
from repro.numerics.cg import (
    conjugate_gradient,
    CgResult,
    CgOperator,
    block_operator,
    csr_matvec_into,
)
from repro.numerics.splitting import (
    BlockDecomposition,
    BlockInfo,
    DecompositionCache,
    DECOMPOSITION_CACHE,
    shared_decomposition,
)
from repro.numerics.jacobi import (
    block_jacobi,
    chaotic_block_jacobi,
    JacobiResult,
)
from repro.numerics.residual import relative_residual, update_distance
from repro.numerics.theory import AsyncCertificate, async_certificate

__all__ = [
    "Poisson2D",
    "poisson_matrix",
    "poisson_rhs",
    "is_m_matrix",
    "is_weak_regular_splitting",
    "jacobi_iteration_matrix",
    "spectral_radius",
    "async_convergence_radius",
    "conjugate_gradient",
    "CgResult",
    "CgOperator",
    "block_operator",
    "csr_matvec_into",
    "BlockDecomposition",
    "BlockInfo",
    "DecompositionCache",
    "DECOMPOSITION_CACHE",
    "shared_decomposition",
    "block_jacobi",
    "chaotic_block_jacobi",
    "JacobiResult",
    "relative_residual",
    "update_distance",
    "AsyncCertificate",
    "async_certificate",
]
