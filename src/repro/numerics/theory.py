"""Asynchronous-convergence certificates (the §1/§6 theory, executable).

The paper's mathematical licence: for ``A x = b`` with ``A`` an M-matrix,
any weak regular splitting yields an iteration that converges
*asynchronously*; practically, block-Jacobi converges chaotically when
``ρ(|T|) < 1`` for the iteration matrix ``T`` (§6: "the block-Jacobi method
has the advantage of being solvable using the asynchronous iteration model
if the spectral radius of the absolute value of the iteration matrix is
less than 1").

:func:`async_certificate` computes that certificate for a concrete
:class:`~repro.numerics.splitting.BlockDecomposition`; the tests pair it
with the chaotic reference solver to show both directions — certified
systems converge under chaos, and a non-certified counterexample diverges.
Dense linear algebra: verification-sized problems only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.matrix import (
    is_m_matrix,
    is_weak_regular_splitting,
    spectral_radius,
)
from repro.numerics.splitting import BlockDecomposition

__all__ = ["AsyncCertificate", "async_certificate", "block_iteration_matrix"]


def block_iteration_matrix(decomp: BlockDecomposition) -> np.ndarray:
    """The (non-overlapping) block-Jacobi iteration matrix ``T = I − M⁻¹A``.

    ``M`` is the block-diagonal of ``A`` over the decomposition's *owned*
    ranges.  Overlapping decompositions do not have a single square
    iteration matrix (components are computed twice); for those the owned
    ranges still induce a valid splitting whose certificate is a
    conservative proxy, which is what this returns.
    """
    A = decomp.A.toarray()
    size = A.shape[0]
    M = np.zeros_like(A)
    for blk in decomp.blocks:
        sl = slice(blk.own_start, blk.own_end)
        M[sl, sl] = A[sl, sl]
    return np.eye(size) - np.linalg.solve(M, A)


@dataclass(frozen=True)
class AsyncCertificate:
    """The §6 convergence certificate for one decomposition."""

    rho_abs: float           #: ρ(|T|) — chaotic convergence iff < 1
    rho: float               #: ρ(T) — synchronous convergence iff < 1
    m_matrix: bool           #: is A an (verified) M-matrix?
    weak_regular: bool       #: is A = M − N a weak regular splitting?

    @property
    def async_convergent(self) -> bool:
        return self.rho_abs < 1.0

    @property
    def sync_convergent(self) -> bool:
        return self.rho < 1.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ASYNC-SAFE" if self.async_convergent else "NOT CERTIFIED"
        return (
            f"{verdict}: rho(|T|)={self.rho_abs:.4f}, rho(T)={self.rho:.4f}, "
            f"M-matrix={self.m_matrix}, weak-regular={self.weak_regular}"
        )


def async_certificate(decomp: BlockDecomposition) -> AsyncCertificate:
    """Compute the full certificate (dense; verification sizes only)."""
    A = decomp.A.toarray()
    size = A.shape[0]
    if size > 2500:
        raise ValueError(
            f"certificate is a dense computation; {size} unknowns is too "
            "large (use it on verification-sized problems)"
        )
    T = block_iteration_matrix(decomp)
    M = np.zeros_like(A)
    for blk in decomp.blocks:
        sl = slice(blk.own_start, blk.own_end)
        M[sl, sl] = A[sl, sl]
    return AsyncCertificate(
        rho_abs=spectral_radius(np.abs(T)),
        rho=spectral_radius(T),
        m_matrix=is_m_matrix(A),
        weak_regular=is_weak_regular_splitting(A, M),
    )
