"""Residual and update-distance measures used by convergence detectors."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["relative_residual", "update_distance"]


def relative_residual(A: sp.spmatrix, x: np.ndarray, b: np.ndarray) -> float:
    """``||b - A x|| / ||b||`` (2-norm; absolute when ``b = 0``)."""
    r = b - A @ x
    b_norm = float(np.linalg.norm(b))
    r_norm = float(np.linalg.norm(r))
    return r_norm / b_norm if b_norm > 0 else r_norm


def update_distance(
    x_new: np.ndarray,
    x_old: np.ndarray,
    relative: bool = True,
    work: np.ndarray | None = None,
) -> float:
    """Distance between consecutive iterates (max-norm).

    This is the paper's practical convergence signal (§5.5): "the relative
    error between the last two iterations".

    ``work`` (same shape as ``x_new``) makes the reduction allocation-free:
    the same elementwise operations run into the caller's buffer, so the
    result is bitwise identical either way.
    """
    if not x_new.size:
        return 0.0
    if work is None:
        diff = float(np.max(np.abs(x_new - x_old)))
    else:
        np.subtract(x_new, x_old, out=work)
        np.abs(work, out=work)
        diff = float(work.max())
    if not relative:
        return diff
    if work is None:
        scale = float(np.max(np.abs(x_new)))
    else:
        np.abs(x_new, out=work)
        scale = float(work.max())
    return diff / scale if scale > 0 else diff
