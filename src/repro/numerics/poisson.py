"""2-D Poisson problem: ``-Δu = f`` on the unit square (paper §6).

Discretized with centred finite differences on a uniform ``n × n`` interior
grid (mesh width ``h = 1/(n+1)``), Dirichlet boundary conditions::

    (4 u_{i,j} - u_{i-1,j} - u_{i+1,j} - u_{i,j-1} - u_{i,j+1}) / h² = f_{i,j}

Unknowns are ordered row-major (grid row ``i``, column ``j`` → index
``i*n + j``), which makes the matrix 5-diagonal and makes a *horizontal
strip* of the grid a contiguous index range — the decomposition unit used by
the paper (components per processor are a multiple of ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["poisson_matrix", "poisson_rhs", "Poisson2D"]


def poisson_matrix(n: int, scaled: bool = True) -> sp.csr_matrix:
    """The 5-point Laplacian on an ``n × n`` interior grid (size ``n² × n²``).

    ``scaled=True`` includes the ``1/h²`` factor (the physical operator);
    ``scaled=False`` returns the pure stencil (4 on the diagonal, -1 off),
    which has the same iteration matrices and is convenient in tests.
    """
    if n < 1:
        raise ValueError("grid size n must be >= 1")
    h2inv = (n + 1.0) ** 2 if scaled else 1.0
    main = 4.0 * np.ones(n * n)
    side = -1.0 * np.ones(n * n - 1)
    # no horizontal coupling across grid-row boundaries
    side[np.arange(1, n * n) % n == 0] = 0.0
    updown = -1.0 * np.ones(n * n - n)
    A = sp.diags(
        [main, side, side, updown, updown],
        [0, 1, -1, n, -n],
        format="csr",
    )
    return (A * h2inv).tocsr()


def poisson_rhs(
    n: int,
    f: Callable[[np.ndarray, np.ndarray], np.ndarray],
    boundary: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Assemble the right-hand side for ``-Δu = f`` with Dirichlet data.

    ``f(x, y)`` and ``boundary(x, y)`` are vectorized callables on grid
    coordinate arrays.  Nonzero boundary values are folded into ``b`` via the
    standard elimination of known unknowns.
    """
    if n < 1:
        raise ValueError("grid size n must be >= 1")
    h = 1.0 / (n + 1)
    xs = (np.arange(n) + 1) * h
    X, Y = np.meshgrid(xs, xs, indexing="ij")  # X: grid-row coordinate
    b = f(X, Y).astype(float).reshape(n * n).copy()
    if boundary is not None:
        h2inv = 1.0 / (h * h)
        edge = np.zeros((n, n))
        zero, one = np.zeros(n), np.ones(n)
        edge[0, :] += boundary(zero, xs)        # x = 0 side touches row 0
        edge[-1, :] += boundary(one, xs)        # x = 1 side
        edge[:, 0] += boundary(xs, zero)        # y = 0 side
        edge[:, -1] += boundary(xs, one)        # y = 1 side
        b += h2inv * edge.reshape(n * n)
    return b


@dataclass
class Poisson2D:
    """A fully assembled Poisson problem with its exact discrete solution.

    By default uses the *manufactured solution*
    ``u(x, y) = sin(πx) sin(πy)``, for which ``f = 2π² u``; the discrete
    solution then differs from ``u`` only by the O(h²) truncation error,
    which :meth:`discretization_error` reports.
    """

    n: int
    A: sp.csr_matrix
    b: np.ndarray
    u_exact_grid: np.ndarray | None = None

    @classmethod
    def manufactured(cls, n: int) -> "Poisson2D":
        A = poisson_matrix(n, scaled=True)
        u = lambda x, y: np.sin(np.pi * x) * np.sin(np.pi * y)  # noqa: E731
        f = lambda x, y: 2.0 * np.pi**2 * u(x, y)  # noqa: E731
        b = poisson_rhs(n, f)  # u vanishes on the boundary
        h = 1.0 / (n + 1)
        xs = (np.arange(n) + 1) * h
        X, Y = np.meshgrid(xs, xs, indexing="ij")
        return cls(n=n, A=A, b=b, u_exact_grid=u(X, Y).reshape(n * n))

    @classmethod
    def heat_plate(cls, n: int, source: float = 1.0) -> "Poisson2D":
        """Constant heat source, cold walls — the physics motivation in §6."""
        A = poisson_matrix(n, scaled=True)
        b = poisson_rhs(n, lambda x, y: np.full_like(x, source))
        return cls(n=n, A=A, b=b)

    @property
    def size(self) -> int:
        """Number of unknowns, ``n²`` (the paper's "problem size")."""
        return self.n * self.n

    def solve_direct(self) -> np.ndarray:
        """Reference solution via a sparse direct solve."""
        from scipy.sparse.linalg import spsolve

        return spsolve(self.A.tocsc(), self.b)

    def residual_norm(self, x: np.ndarray) -> float:
        r = self.b - self.A @ x
        return float(np.linalg.norm(r) / max(np.linalg.norm(self.b), 1e-300))

    def discretization_error(self, x: np.ndarray) -> float:
        """Max-norm distance to the continuous manufactured solution."""
        if self.u_exact_grid is None:
            raise ValueError("no manufactured solution attached")
        return float(np.max(np.abs(x - self.u_exact_grid)))
