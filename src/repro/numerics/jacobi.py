"""Sequential reference solvers for the block-Jacobi multisplitting.

These run the *same* mathematics as the distributed runtime, without any
network, and serve as ground truth:

* :func:`block_jacobi` — the synchronous outer iteration: every block solves
  with the neighbours' values from the previous sweep.
* :func:`chaotic_block_jacobi` — an asynchronous (chaotic relaxation) model:
  at each step a scheduled subset of blocks update, reading neighbour values
  that may be *stale by up to ``max_delay`` sweeps*.  Under the M-matrix /
  weak-regular-splitting hypotheses this still converges to the same fixed
  point — the property JaceP2P's whole design rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.numerics.cg import conjugate_gradient
from repro.numerics.splitting import BlockDecomposition
from repro.util.rng import RngTree

__all__ = ["JacobiResult", "block_jacobi", "chaotic_block_jacobi"]


@dataclass
class JacobiResult:
    """Outcome of an outer block-Jacobi run."""

    x: np.ndarray
    converged: bool
    outer_iterations: int
    residual_norm: float
    inner_iterations_total: int = 0
    flops_total: float = 0.0
    residual_history: list[float] = field(default_factory=list)


def _solve_blocks_once(
    decomp: BlockDecomposition,
    x_locals: list[np.ndarray],
    which: list[int],
    read_global: np.ndarray,
    inner_tol: float,
) -> tuple[int, float]:
    """In-place sub-iteration for the chosen blocks; returns (inner_its, flops)."""
    inner = 0
    flops = 0.0
    for k in which:
        blk = decomp.blocks[k]
        ext_vals = read_global[blk.ext_cols] if blk.ext_cols.size else np.empty(0)
        rhs = decomp.local_rhs(k, ext_vals)
        result = conjugate_gradient(
            blk.A_local, rhs, x0=x_locals[k], tol=inner_tol
        )
        x_locals[k] = result.x
        inner += result.iterations
        flops += result.flops
    return inner, flops


def block_jacobi(
    decomp: BlockDecomposition,
    tol: float = 1e-8,
    max_outer: int = 10_000,
    inner_tol: float = 1e-10,
    raise_on_fail: bool = False,
) -> JacobiResult:
    """Synchronous block-Jacobi with inner CG.

    Convergence: relative residual of the assembled global iterate below
    ``tol``.
    """
    x_locals = [np.zeros(blk.n_ext) for blk in decomp.blocks]
    b_norm = max(float(np.linalg.norm(decomp.b)), 1e-300)
    history: list[float] = []
    inner_total, flops_total = 0, 0.0

    for outer in range(1, max_outer + 1):
        x_global = decomp.assemble(x_locals)
        inner, flops = _solve_blocks_once(
            decomp, x_locals, list(range(decomp.nblocks)), x_global, inner_tol
        )
        inner_total += inner
        flops_total += flops
        x_new = decomp.assemble(x_locals)
        res = float(np.linalg.norm(decomp.b - decomp.A @ x_new)) / b_norm
        history.append(res)
        if res <= tol:
            return JacobiResult(
                x=x_new,
                converged=True,
                outer_iterations=outer,
                residual_norm=res,
                inner_iterations_total=inner_total,
                flops_total=flops_total,
                residual_history=history,
            )
    if raise_on_fail:
        raise ConvergenceError(f"block-Jacobi: no convergence in {max_outer} sweeps")
    return JacobiResult(
        x=decomp.assemble(x_locals),
        converged=False,
        outer_iterations=max_outer,
        residual_norm=history[-1] if history else float("inf"),
        inner_iterations_total=inner_total,
        flops_total=flops_total,
        residual_history=history,
    )


def chaotic_block_jacobi(
    decomp: BlockDecomposition,
    rng: RngTree,
    tol: float = 1e-8,
    max_steps: int = 100_000,
    inner_tol: float = 1e-10,
    activation_probability: float = 0.6,
    max_delay: int = 3,
    raise_on_fail: bool = False,
) -> JacobiResult:
    """Asynchronous (chaotic) relaxation with bounded random delays.

    At each global step every block independently updates with probability
    ``activation_probability`` (but never starves: a block skipped
    ``max_delay`` consecutive steps is forced to run — the standard
    "eventually every component updates" hypothesis).  Each update reads
    neighbour values from a randomly chosen *past* snapshot at most
    ``max_delay`` steps old (bounded staleness).
    """
    if not 0 < activation_probability <= 1:
        raise ValueError("activation_probability must be in (0, 1]")
    if max_delay < 0:
        raise ValueError("max_delay must be >= 0")

    x_locals = [np.zeros(blk.n_ext) for blk in decomp.blocks]
    b_norm = max(float(np.linalg.norm(decomp.b)), 1e-300)
    history: list[float] = []
    snapshots: list[np.ndarray] = [decomp.assemble(x_locals)]
    skipped = [0] * decomp.nblocks
    inner_total, flops_total = 0, 0.0
    act_rng = rng.child("activate")
    delay_rng = rng.child("delay")

    for step in range(1, max_steps + 1):
        which = []
        for k in range(decomp.nblocks):
            if act_rng.uniform() < activation_probability or skipped[k] >= max_delay:
                which.append(k)
                skipped[k] = 0
            else:
                skipped[k] += 1
        for k in which:
            # each active block reads its own stale snapshot
            age = delay_rng.integers(0, min(max_delay, len(snapshots) - 1) + 1)
            snap = snapshots[-1 - age]
            inner, flops = _solve_blocks_once(decomp, x_locals, [k], snap, inner_tol)
            inner_total += inner
            flops_total += flops
        x_now = decomp.assemble(x_locals)
        snapshots.append(x_now)
        if len(snapshots) > max_delay + 1:
            snapshots.pop(0)
        res = float(np.linalg.norm(decomp.b - decomp.A @ x_now)) / b_norm
        history.append(res)
        if res <= tol:
            return JacobiResult(
                x=x_now,
                converged=True,
                outer_iterations=step,
                residual_norm=res,
                inner_iterations_total=inner_total,
                flops_total=flops_total,
                residual_history=history,
            )
    if raise_on_fail:
        raise ConvergenceError(f"chaotic relaxation: no convergence in {max_steps} steps")
    return JacobiResult(
        x=decomp.assemble(x_locals),
        converged=False,
        outer_iterations=max_steps,
        residual_norm=history[-1] if history else float("inf"),
        inner_iterations_total=inner_total,
        flops_total=flops_total,
        residual_history=history,
    )
