"""BiCGSTAB — a from-scratch Krylov solver for *nonsymmetric* systems.

The paper's inner solver is CG (§6), which requires symmetry.  The class
of problems the paper claims (§1: "sparse linear systems … where A is an
M-matrix") is wider: upwind-discretized convection–diffusion operators are
nonsymmetric M-matrices.  BiCGSTAB (van der Vorst 1992) handles those; the
implementation mirrors :mod:`repro.numerics.cg`'s interface, including the
flop accounting the simulator charges as compute time.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.numerics.cg import CgResult

__all__ = ["bicgstab", "bicgstab_flops_estimate"]


def bicgstab_flops_estimate(nnz: int, nrows: int, iterations: int) -> float:
    """Two matvecs (4·nnz) plus ~14 vector ops per iteration."""
    return float(iterations) * (4.0 * nnz + 14.0 * nrows) + 2.0 * nnz


def bicgstab(
    A: sp.spmatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    raise_on_fail: bool = False,
) -> CgResult:
    """Solve ``A x = b`` for general nonsingular sparse ``A``.

    Returns the same :class:`~repro.numerics.cg.CgResult` record as the CG
    solver so callers (tasks, the compute-cost model) are solver-agnostic.
    Convergence test: ``||r|| <= tol * ||b||``.
    """
    A = A.tocsr() if sp.issparse(A) else sp.csr_matrix(A)
    nrows = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    b = np.asarray(b, dtype=float)
    if b.shape != (nrows,):
        raise ValueError(f"b has shape {b.shape}, expected ({nrows},)")
    if max_iter is None:
        max_iter = max(20 * nrows, 200)

    x = np.zeros(nrows) if x0 is None else np.array(x0, dtype=float, copy=True)
    if x.shape != (nrows,):
        raise ValueError("x0 shape mismatch")

    b_norm = float(np.linalg.norm(b))
    stop = tol * b_norm if b_norm > 0 else tol

    r = b - A @ x
    res = float(np.linalg.norm(r))
    r_hat = r.copy()  # shadow residual
    rho = alpha = omega = 1.0
    v = np.zeros(nrows)
    p = np.zeros(nrows)
    it = 0

    while res > stop and it < max_iter:
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            break  # breakdown: shadow residual orthogonal to residual
        if it == 0:
            p = r.copy()
        else:
            beta = (rho_new / rho) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = A @ p
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm <= stop:
            x += alpha * p
            res = s_norm
            it += 1
            break
        t = A @ s
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        if omega == 0.0:
            break
        x += alpha * p + omega * s
        r = s - omega * t
        res = float(np.linalg.norm(r))
        rho = rho_new
        it += 1

    converged = res <= stop
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"BiCGSTAB did not converge in {it} iterations (residual {res:.3e})"
        )
    return CgResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=res,
        flops=bicgstab_flops_estimate(A.nnz, nrows, it),
    )
