"""Synchronous (BSP) baseline engine.

Runs the *same* Task objects as the asynchronous runtime, but in lockstep
supersteps on the same simulated hosts:

1. every task iterates once on the freshest data — which, synchronously, is
   always the neighbours' previous-superstep output;
2. the superstep lasts as long as the *slowest* participant's compute plus
   the message exchange (the barrier);
3. if any participating host is offline at the barrier (or failed during
   the superstep), the whole computation **stalls** until the machine
   returns, then *every* task rolls back to the last coordinated checkpoint
   — the synchronous model needs a consistent global state, so one failure
   costs everyone their progress since that checkpoint.

This is the §1 argument made executable: under churn, the synchronous model
pays (stall + global rollback) per disconnection, where JaceP2P pays only
one task's local rollback while everyone else keeps computing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.convergence import LocalConvergenceDetector
from repro.des import Simulator
from repro.net.host import BASE_FLOPS, Host
from repro.net.link import LinkModel, UniformLinkModel
from repro.p2p.messages import AppSpec
from repro.p2p.task import Task, TaskContext
from repro.util.logging import EventLog
from repro.util.serialization import clone_state, measured_size

__all__ = ["SynchronousEngine", "SyncResult"]


@dataclass
class SyncResult:
    """Outcome of a synchronous run."""

    converged: bool
    converged_at: float | None
    supersteps: int
    stall_time: float = 0.0
    rollbacks: int = 0
    lost_iterations: int = 0  # superstep-work discarded by rollbacks, summed over tasks
    fragments: dict[int, Any] = field(default_factory=dict)


class SynchronousEngine:
    """BSP execution of an :class:`~repro.p2p.messages.AppSpec`."""

    def __init__(
        self,
        sim: Simulator,
        hosts: list[Host],
        app: AppSpec,
        checkpoint_frequency: int = 5,
        convergence_threshold: float = 1e-6,
        stability_window: int = 3,
        link_model: LinkModel | None = None,
        barrier_overhead: float = 0.002,
        stall_poll: float = 0.5,
        log: EventLog | None = None,
        max_supersteps: int = 1_000_000,
    ):
        if len(hosts) < app.num_tasks:
            raise ValueError("need one host per task")
        if checkpoint_frequency < 1:
            raise ValueError("checkpoint_frequency must be >= 1")
        self.sim = sim
        self.hosts = hosts[: app.num_tasks]
        self.app = app
        self.checkpoint_frequency = checkpoint_frequency
        self.threshold = (
            app.convergence_threshold
            if app.convergence_threshold is not None
            else convergence_threshold
        )
        self.window = (
            app.stability_window if app.stability_window is not None else stability_window
        )
        self.link_model = link_model or UniformLinkModel()
        self.barrier_overhead = barrier_overhead
        self.stall_poll = stall_poll
        self.log = log
        self.max_supersteps = max_supersteps
        self.result = SyncResult(converged=False, converged_at=None, supersteps=0)
        self.done = sim.event(name=f"sync:{app.app_id}:done")
        sim.process(self._run(), label=f"sync:{app.app_id}")

    # -- the superstep loop ---------------------------------------------------

    def _run(self):
        app = self.app
        tasks: list[Task] = []
        detectors: list[LocalConvergenceDetector] = []
        for k in range(app.num_tasks):
            task = app.task_factory()
            task.setup(TaskContext(app.app_id, k, app.num_tasks, app.params))
            task.load_state(task.initial_state())
            tasks.append(task)
            detectors.append(
                LocalConvergenceDetector(self.threshold, self.window)
            )
        pending: dict[int, dict[int, Any]] = {k: {} for k in range(app.num_tasks)}
        checkpoint = [clone_state(t.dump_state()) for t in tasks]
        checkpoint_step = 0
        superstep = 0

        while superstep < self.max_supersteps:
            stall = yield from self._wait_all_online()
            self.result.stall_time += stall
            fail_counts = [h.fail_count for h in self.hosts]
            start = self.sim.now

            # compute phase: every task iterates on last superstep's data
            inboxes = pending
            pending = {k: {} for k in range(app.num_tasks)}
            durations = []
            bytes_out = []
            for k, task in enumerate(tasks):
                step = task.iterate(inboxes[k])
                for dst, payload in step.outgoing.items():
                    pending[dst][k] = payload
                durations.append(step.flops / (self.hosts[k].speed * BASE_FLOPS))
                bytes_out.append(
                    sum(measured_size(p) for p in step.outgoing.values())
                )
                detectors[k].update(step.local_distance)

            # barrier: slowest compute + slowest exchange
            comm = 0.0
            for k in range(app.num_tasks):
                if bytes_out[k]:
                    nb = (k + 1) % app.num_tasks
                    comm = max(
                        comm,
                        self.link_model.delay(self.hosts[k], self.hosts[nb], bytes_out[k]),
                    )
            yield self.sim.timeout(max(durations) + comm + self.barrier_overhead)

            # did anyone die during the superstep? then its results are lost
            if any(
                h.fail_count != fc or not h.online
                for h, fc in zip(self.hosts, fail_counts)
            ):
                self._log("sync_superstep_aborted", superstep=superstep)
                stall = yield from self._wait_all_online()
                self.result.stall_time += stall
                # global rollback: EVERY task returns to the coordinated
                # checkpoint, losing (superstep - checkpoint_step) sweeps each
                for task, snap in zip(tasks, checkpoint):
                    task.load_state(clone_state(snap))
                for det in detectors:
                    det.reset()
                self.result.rollbacks += 1
                self.result.lost_iterations += (
                    (superstep - checkpoint_step) * app.num_tasks
                )
                pending = {k: {} for k in range(app.num_tasks)}
                superstep = checkpoint_step
                continue

            superstep += 1
            self.result.supersteps = superstep
            if superstep % self.checkpoint_frequency == 0:
                checkpoint = [clone_state(t.dump_state()) for t in tasks]
                checkpoint_step = superstep

            if all(det.stable for det in detectors):
                self.result.converged = True
                self.result.converged_at = self.sim.now
                self.result.fragments = {
                    k: tasks[k].solution_fragment() for k in range(app.num_tasks)
                }
                self._log("sync_converged", supersteps=superstep)
                self.done.succeed(self.result)
                return self.result

        self.done.succeed(self.result)
        return self.result

    def _wait_all_online(self):
        """Block until every participating host is online; returns the
        stall duration (the synchronous model's Achilles heel)."""
        start = self.sim.now
        while not all(h.online for h in self.hosts):
            yield self.sim.timeout(self.stall_poll)
        return self.sim.now - start

    def _log(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.emit(self.sim.now, f"sync:{self.app.app_id}", kind, **detail)
