"""The master–slave ("Desktop Grid / Global Computing") baseline.

Cycle-stealing environments distribute *independent* work units from a
master to slaves; slaves cannot talk to each other.  This scheduler makes
the paper's §1 limitation executable:

* a bag of independent tasks runs fine (with retry-on-failure, the classic
  desktop-grid fault model);
* an application whose tasks emit inter-task messages is **rejected** with
  :class:`~repro.errors.NotSupportedError` — the reason iterative
  applications with computing dependencies need JaceP2P at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.convergence import LocalConvergenceDetector
from repro.des import Simulator
from repro.errors import NotSupportedError
from repro.net.host import BASE_FLOPS, Host
from repro.p2p.messages import AppSpec
from repro.p2p.task import Task, TaskContext
from repro.util.logging import EventLog

__all__ = ["MasterSlaveScheduler", "MasterSlaveResult"]


@dataclass
class MasterSlaveResult:
    """Outcome of a master–slave run."""

    completed: bool
    finished_at: float | None
    results: dict[int, Any] = field(default_factory=dict)
    retries: int = 0


class MasterSlaveScheduler:
    """Runs an AppSpec's tasks as an independent bag of work.

    Each work unit = run one task to *local* convergence in isolation
    (there are no neighbours to talk to).  A slave failure re-queues the
    unit from scratch on the next free slave — desktop grids have no
    inter-slave checkpointing.
    """

    def __init__(
        self,
        sim: Simulator,
        slaves: list[Host],
        app: AppSpec,
        convergence_threshold: float = 1e-6,
        stability_window: int = 3,
        max_iterations_per_unit: int = 1_000_000,
        log: EventLog | None = None,
    ):
        if not slaves:
            raise ValueError("need at least one slave host")
        self.sim = sim
        self.slaves = list(slaves)
        self.app = app
        self.threshold = (
            app.convergence_threshold
            if app.convergence_threshold is not None
            else convergence_threshold
        )
        self.window = (
            app.stability_window if app.stability_window is not None else stability_window
        )
        self.max_iterations = max_iterations_per_unit
        self.log = log
        self.result = MasterSlaveResult(completed=False, finished_at=None)
        self.queue: list[int] = list(range(app.num_tasks))
        self.rejected: NotSupportedError | None = None
        self.done = sim.event(name=f"ms:{app.app_id}:done")
        sim.process(self._master(), label=f"ms:{app.app_id}")

    def _master(self):
        running: list = []
        while (self.queue or running) and self.rejected is None:
            busy = {slave for _, slave, _ in running}
            free = [s for s in self.slaves if s.online and s not in busy]
            while self.queue and free:
                slave = free.pop(0)
                task_id = self.queue.pop(0)
                running.append(
                    (self.sim.process(
                        self._work_unit(slave, task_id),
                        label=f"ms:unit{task_id}",
                    ), slave, task_id)
                )
            if not running:
                # nothing runnable (all slaves dead): poll for recoveries
                yield self.sim.timeout(0.5)
                continue
            yield self.sim.any_of([p for p, _, _ in running])
            still = []
            for proc, slave, task_id in running:
                if proc.processed:
                    if not proc.value:  # failed unit: rerun from scratch
                        self.result.retries += 1
                        if self.rejected is None:
                            self.queue.append(task_id)
                else:
                    still.append((proc, slave, task_id))
            running = still
        if self.rejected is not None:
            return  # done already failed with NotSupportedError
        self.result.completed = True
        self.result.finished_at = self.sim.now
        self.done.succeed(self.result)

    def _work_unit(self, slave: Host, task_id: int):
        """Run one task in isolation on ``slave``; True on success."""
        task: Task = self.app.task_factory()
        task.setup(
            TaskContext(self.app.app_id, task_id, self.app.num_tasks, self.app.params)
        )
        task.load_state(task.initial_state())
        detector = LocalConvergenceDetector(self.threshold, self.window)
        iterations = 0
        while iterations < self.max_iterations:
            if not slave.online:
                return False  # slave vanished: the master re-queues the unit
            step = task.iterate({})  # no neighbours in this model
            if step.outgoing:
                exc = NotSupportedError(
                    "master-slave model cannot express inter-task communication "
                    f"(task {task_id} tried to send to {sorted(step.outgoing)})"
                )
                self.rejected = exc
                if not self.done.triggered:
                    self.done.fail(exc)
                return False
            yield self.sim.timeout(
                max(step.flops / (slave.speed * BASE_FLOPS), 1e-6)
            )
            if not slave.online:
                return False  # died mid-iteration: work lost
            iterations += 1
            detector.update(step.local_distance)
            if detector.stable:
                self.result.results[task_id] = task.solution_fragment()
                if self.log is not None:
                    self.log.emit(self.sim.now, f"ms:{self.app.app_id}",
                                  "ms_unit_done", task=task_id,
                                  iterations=iterations)
                return True
        return False
