"""``repro.baselines`` — the execution models the paper argues against.

* :class:`SynchronousEngine` — BSP/synchronous iterations on the same
  simulated testbed: every superstep barriers on the slowest peer, and any
  disconnection stalls *everyone* until the machine returns, followed by a
  global rollback to the last coordinated checkpoint (§1: "all the nodes
  involved in the computation of an application would stop computing when a
  single disconnection occurs").
* :class:`MasterSlaveScheduler` — the "Desktop/Global Computing"
  master–slave model: independent work units only; it refuses applications
  whose tasks communicate (§1: "those environments cannot be used to run
  iterative applications as long as communication is restricted to the
  master-slave model").
* :func:`build_centralized_cluster` — the JaceV-style centralized topology
  (§4.1/§2.2): registry and Spawner on one machine, a single point of
  failure and a message bottleneck the hybrid topology was built to avoid.
"""

from repro.baselines.sync_engine import SynchronousEngine, SyncResult
from repro.baselines.master_slave import MasterSlaveScheduler, MasterSlaveResult
from repro.baselines.jacev import build_centralized_cluster

__all__ = [
    "SynchronousEngine",
    "SyncResult",
    "MasterSlaveScheduler",
    "MasterSlaveResult",
    "build_centralized_cluster",
]
