"""The JaceV-style centralized deployment (paper §4.1, §2.2).

JaceP2P is "the P2P and decentralized version of JaceV", which was "a fully
centralized volatility tolerant platform".  In the centralized topology
(§2.2) one stable server indexes every peer — simple, but "centralization
may generate bottlenecks and can present some scalability limits", and it
is a single point of failure.

This module wires the *same* runtime entities into that topology: one
machine hosts both the only registry (a single Super-Peer) and the Spawner.
Two consequences the tests/benchmarks quantify against the hybrid topology:

* every Daemon's heartbeat and every reservation hits the one server
  (bottleneck: its message load grows linearly with the population, where
  the hybrid topology spreads it over the Super-Peers);
* if the central machine dies, the whole platform dies: Daemons have no
  other entry point to re-register with, and the application's register
  and convergence array are gone — where JaceP2P tolerates the loss of any
  Super-Peer (§5.3) and of any Daemon (§5.4).
"""

from __future__ import annotations

from repro.des import Simulator
from repro.net.topology import build_testbed
from repro.p2p.cluster import Cluster
from repro.p2p.config import P2PConfig
from repro.p2p.superpeer import SuperPeer
from repro.util.logging import EventLog
from repro.util.rng import RngTree

__all__ = ["build_centralized_cluster"]


def build_centralized_cluster(
    n_daemons: int,
    seed: int = 0,
    config: P2PConfig | None = None,
    homogeneous: bool = False,
    link_scale: float = 1.0,
    checkpoint=None,
) -> Cluster:
    """Build a JaceV-style deployment: registry + Spawner on ONE machine.

    Returns the same :class:`~repro.p2p.cluster.Cluster` handle as
    :func:`~repro.p2p.cluster.build_cluster`, so
    :func:`~repro.p2p.cluster.launch_application` and the churn machinery
    work unchanged — only the topology differs.  The testbed's Super-Peer
    host allocation is skipped; the central server lives on the spawner
    host, so failing that single host takes down registry and application
    management together.
    """
    config = config or P2PConfig()
    rng = RngTree(seed)
    sim = Simulator()
    testbed = build_testbed(
        sim,
        n_daemons=n_daemons,
        n_superpeers=1,  # allocated but unused: the registry is colocated
        rng=None if homogeneous else rng.child("testbed"),
        homogeneous=homogeneous,
        link_scale=link_scale,
    )
    log = EventLog()
    cluster = Cluster(sim=sim, testbed=testbed, config=config, rng=rng, log=log,
                  checkpoint=checkpoint)

    central_host = testbed.spawner_host
    server = SuperPeer(
        testbed.network, central_host, sp_id="CENTRAL", config=config, log=log
    )
    server.link([])  # nobody to forward to
    cluster.superpeers.append(server)

    for host in testbed.daemon_hosts:
        cluster.boot_daemon(host)
        host.on_recover(lambda h: cluster.boot_daemon(h))

    return cluster
