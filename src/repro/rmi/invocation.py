"""Remote-method marking and invocation message types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.address import Address

__all__ = ["remote", "is_remote", "remote_method_table", "CallMessage",
           "ReplyMessage", "OnewayMessage"]

_REMOTE_ATTR = "__rmi_remote__"
_call_ids = itertools.count()
_remote_tables: dict[type, frozenset] = {}


def remote(fn: Callable) -> Callable:
    """Mark a method as remotely invocable.

    Unmarked methods cannot be called through a stub — mirroring the RMI
    discipline where only interface methods are exported, and preventing a
    malformed message from invoking internals like ``fail()``.
    """
    setattr(fn, _REMOTE_ATTR, True)
    return fn


def is_remote(fn: Callable) -> bool:
    return getattr(fn, _REMOTE_ATTR, False)


def remote_method_table(cls: type) -> frozenset:
    """The exported-method names of ``cls``, computed once per class.

    Replaces the per-dispatch ``dir()`` walk + ``@remote`` re-check: classes
    are static after definition, so the table is built on first use and
    cached for the life of the process.
    """
    table = _remote_tables.get(cls)
    if table is None:
        table = frozenset(
            name
            for name in dir(cls)
            if not name.startswith("_")
            and callable(getattr(cls, name, None))
            and is_remote(getattr(cls, name))
        )
        _remote_tables[cls] = table
    return table


@dataclass
class CallMessage:
    """A request expecting a reply."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict
    reply_to: Address
    call_id: int = field(default_factory=lambda: next(_call_ids))


@dataclass
class ReplyMessage:
    """The response to a :class:`CallMessage`."""

    call_id: int
    ok: bool
    value: Any  # result when ok, exception otherwise


@dataclass
class OnewayMessage:
    """Fire-and-forget invocation: no reply, errors logged server-side."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict
