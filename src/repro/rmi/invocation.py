"""Remote-method marking and invocation message types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.address import Address

__all__ = ["remote", "is_remote", "CallMessage", "ReplyMessage", "OnewayMessage"]

_REMOTE_ATTR = "__rmi_remote__"
_call_ids = itertools.count()


def remote(fn: Callable) -> Callable:
    """Mark a method as remotely invocable.

    Unmarked methods cannot be called through a stub — mirroring the RMI
    discipline where only interface methods are exported, and preventing a
    malformed message from invoking internals like ``fail()``.
    """
    setattr(fn, _REMOTE_ATTR, True)
    return fn


def is_remote(fn: Callable) -> bool:
    return getattr(fn, _REMOTE_ATTR, False)


@dataclass
class CallMessage:
    """A request expecting a reply."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict
    reply_to: Address
    call_id: int = field(default_factory=lambda: next(_call_ids))


@dataclass
class ReplyMessage:
    """The response to a :class:`CallMessage`."""

    call_id: int
    ok: bool
    value: Any  # result when ok, exception otherwise


@dataclass
class OnewayMessage:
    """Fire-and-forget invocation: no reply, errors logged server-side."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict
