"""Remote-method marking and invocation message types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.address import Address

__all__ = ["remote", "is_remote", "remote_method_table", "CallMessage",
           "ReplyMessage", "OnewayMessage", "PreparedOneway"]

_REMOTE_ATTR = "__rmi_remote__"
_call_ids = itertools.count()
_remote_tables: dict[type, frozenset] = {}


def remote(fn: Callable) -> Callable:
    """Mark a method as remotely invocable.

    Unmarked methods cannot be called through a stub — mirroring the RMI
    discipline where only interface methods are exported, and preventing a
    malformed message from invoking internals like ``fail()``.
    """
    setattr(fn, _REMOTE_ATTR, True)
    return fn


def is_remote(fn: Callable) -> bool:
    return getattr(fn, _REMOTE_ATTR, False)


def remote_method_table(cls: type) -> frozenset:
    """The exported-method names of ``cls``, computed once per class.

    Replaces the per-dispatch ``dir()`` walk + ``@remote`` re-check: classes
    are static after definition, so the table is built on first use and
    cached for the life of the process.
    """
    table = _remote_tables.get(cls)
    if table is None:
        table = frozenset(
            name
            for name in dir(cls)
            if not name.startswith("_")
            and callable(getattr(cls, name, None))
            and is_remote(getattr(cls, name))
        )
        _remote_tables[cls] = table
    return table


@dataclass(slots=True)
class CallMessage:
    """A request expecting a reply."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict
    reply_to: Address
    call_id: int = field(default_factory=lambda: next(_call_ids))


@dataclass(slots=True)
class ReplyMessage:
    """The response to a :class:`CallMessage`."""

    call_id: int
    ok: bool
    value: Any  # result when ok, exception otherwise


@dataclass(slots=True)
class OnewayMessage:
    """Fire-and-forget invocation: no reply, errors logged server-side."""

    object_name: str
    method: str
    args: tuple
    kwargs: dict


class PreparedOneway:
    """A reusable, pre-measured oneway envelope.

    High-rate emitters whose invocation is *constant* (the wheel-mode
    heartbeat: same method, same arguments, every beat) pay the envelope
    allocation and the payload size walk exactly once, then re-send the
    same immutable message object forever.  Safe to have in flight any
    number of times because nothing on the delivery path mutates it.

    Build via :meth:`repro.rmi.runtime.RmiRuntime.prepare_oneway`.
    """

    __slots__ = ("stub", "msg", "size")

    def __init__(self, stub, msg: OnewayMessage, size: int):
        self.stub = stub
        self.msg = msg
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PreparedOneway {self.msg.object_name}.{self.msg.method} {self.size}B>"
