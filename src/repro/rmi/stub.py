"""Client-side remote references.

A :class:`Stub` is what JaceP2P registers, stores and passes around: an
opaque, serializable handle containing "all the location data" of a remote
object (§4.1).  Stubs are plain frozen dataclasses so they survive being
shipped inside Register broadcasts and checkpoints.

A stub is *not* bound to a runtime; any :class:`~repro.rmi.runtime.RmiRuntime`
can invoke through it.  Convenience binding (``stub.bind(runtime)``) yields a
:class:`BoundStub` whose attribute access produces callables, e.g.::

    peer = stub.bind(my_runtime)
    result = yield peer.call("get_iteration")
    peer.oneway("receive_boundary", data)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.net.address import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.rmi.runtime import RmiRuntime

__all__ = ["Stub", "BoundStub"]


@dataclass(frozen=True, order=True, slots=True)
class Stub:
    """Serializable remote reference: (object name, endpoint address)."""

    object_name: str
    address: Address

    def __post_init__(self) -> None:
        if not self.object_name:
            raise ConfigurationError("stub needs a non-empty object name")

    def bind(self, runtime: "RmiRuntime") -> "BoundStub":
        return BoundStub(self, runtime)

    def __str__(self) -> str:
        return f"{self.object_name}@{self.address}"


class BoundStub:
    """A stub paired with the local runtime that will carry its calls."""

    __slots__ = ("stub", "runtime")

    def __init__(self, stub: Stub, runtime: "RmiRuntime"):
        self.stub = stub
        self.runtime = runtime

    def call(self, method: str, *args: Any, timeout: float | None = None, **kwargs: Any):
        """Two-way invocation; returns a DES event (yield it)."""
        return self.runtime.call(self.stub, method, *args, timeout=timeout, **kwargs)

    def oneway(self, method: str, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget invocation."""
        self.runtime.oneway(self.stub, method, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BoundStub {self.stub}>"
