"""``repro.rmi`` — Java-RMI-style remote invocation over the simulated net.

JaceP2P entities locate each other by exchanging **stubs** (§4.1, §5.1):
after bootstrap, "only RMI stubs are used to locate the different entities of
the network".  This package reproduces those semantics:

* a :class:`RemoteObject` exposes methods marked with :func:`remote`;
* an :class:`RmiRuntime` (one per entity) binds an endpoint on a host,
  serves incoming invocations, and issues outgoing ones;
* a :class:`Stub` is a location-transparent, serializable reference; calling
  through it charges marshalling + link delay both ways;
* an unreachable peer surfaces as :class:`~repro.errors.RemoteError` after a
  call timeout — exactly the failure signal the runtime's heartbeat and
  reservation protocols act on;
* ``oneway`` sends are fire-and-forget with no reply and no error: the
  message-loss-tolerant channel used for asynchronous data exchange.
"""

from repro.rmi.invocation import remote, is_remote
from repro.rmi.stub import Stub
from repro.rmi.runtime import RemoteObject, RmiRuntime, DEFAULT_CALL_TIMEOUT

__all__ = [
    "remote",
    "is_remote",
    "Stub",
    "RemoteObject",
    "RmiRuntime",
    "DEFAULT_CALL_TIMEOUT",
]
