"""Server/client runtime for remote invocations.

One :class:`RmiRuntime` per JaceP2P entity: it binds an endpoint on the
entity's host, runs a dispatcher process (which dies with the host, like a
JVM on a powered-off PC), serves exported objects, and issues outgoing calls.

Failure semantics (these are what the JaceP2P protocols rely on):

* call to a dead/unreachable peer → no reply → :class:`RemoteError` after
  ``timeout`` simulated seconds;
* oneway to a dead peer → silently lost (message-loss-tolerant channel);
* handler raising → the exception travels back and fails the caller's event;
* host dying mid-handler → no reply is ever sent → caller times out.
"""

from __future__ import annotations

from typing import Any

from repro.des import Simulator
from repro.des.events import Event
from repro.errors import NetworkError, RemoteError
from repro.net.address import Address
from repro.net.host import Host
from repro.net.network import Network
from repro.rmi.invocation import (
    CallMessage,
    OnewayMessage,
    PreparedOneway,
    ReplyMessage,
    remote_method_table,
)
from repro.rmi.stub import Stub
from repro.util.hotpath import HOTPATH
from repro.util.logging import EventLog
from repro.util.serialization import measured_size

__all__ = ["RemoteObject", "RmiRuntime", "DEFAULT_CALL_TIMEOUT"]

#: Simulated seconds an invocation waits for its reply before failing.
DEFAULT_CALL_TIMEOUT = 10.0


class RemoteObject:
    """Base class for objects exported through RMI.

    Subclasses mark exported methods with :func:`repro.rmi.remote`.  A method
    may be a plain function (runs instantaneously at the server) or a
    generator (runs as a process on the server's host and may ``yield``
    simulation events — e.g. to charge compute time before answering).
    """

    def exported_methods(self) -> list[str]:
        """Names of the methods callable through a stub (marked @remote)."""
        return sorted(remote_method_table(type(self)))


class RmiRuntime:
    """Binds one endpoint and carries all RMI traffic for an entity."""

    def __init__(
        self,
        network: Network,
        host: Host,
        port: int,
        name: str = "",
        log: EventLog | None = None,
        call_timeout: float = DEFAULT_CALL_TIMEOUT,
    ):
        self.network = network
        self.sim: Simulator = network.sim
        self.host = host
        self.name = name or f"rmi@{host.name}:{port}"
        self.endpoint = host.open_endpoint(port)
        self.address = self.endpoint.address
        self.log = log
        self.call_timeout = call_timeout
        self._objects: dict[str, RemoteObject] = {}
        #: resolved bound methods, keyed by (object_name, method); serving
        #: and unserving invalidate it.  Error paths are never cached.
        self._method_cache: dict[tuple[str, str], Any] = {}
        self._pending: dict[int, Event] = {}
        self.calls_sent = 0
        self.calls_served = 0
        self.oneways_sent = 0
        self.oneway_errors = 0
        self._dispatcher = host.spawn(self._dispatch_loop(), label=f"{self.name}:dispatch")
        # the oneway fast path (Network.send(fast=True)) dispatches
        # eligible deliveries straight into _on_oneway, skipping the
        # mailbox and the dispatcher resume — semantics identical to a
        # mailbox round-trip on an idle endpoint
        self.endpoint.fast_handler = self._on_oneway

    # -- serving ------------------------------------------------------------

    def serve(self, obj: RemoteObject, object_name: str) -> Stub:
        """Export ``obj`` under ``object_name``; returns its stub."""
        if object_name in self._objects:
            raise NetworkError(f"object {object_name!r} already exported on {self.name}")
        self._objects[object_name] = obj
        return Stub(object_name, self.address)

    def unserve(self, object_name: str) -> None:
        self._objects.pop(object_name, None)
        self._method_cache.clear()

    def stub_for(self, object_name: str) -> Stub:
        if object_name not in self._objects:
            raise NetworkError(f"object {object_name!r} not exported on {self.name}")
        return Stub(object_name, self.address)

    @property
    def alive(self) -> bool:
        return self.host.online and not self.endpoint.closed

    # -- outgoing calls --------------------------------------------------------

    def call(
        self, stub: Stub, method: str, *args: Any,
        timeout: float | None = None, size: int | None = None,
        **kwargs: Any,
    ) -> Event:
        """Invoke ``method`` on the remote object behind ``stub``.

        Returns a DES event that fires with the result, or fails with
        :class:`RemoteError` (peer unreachable / timed out) or with the
        remote application exception.  ``size`` pre-supplies the measured
        envelope size (see :meth:`oneway`).
        """
        result = self.sim.event(name=f"call:{stub.object_name}.{method}")
        msg = CallMessage(stub.object_name, method, args, kwargs, reply_to=self.address)
        self._pending[msg.call_id] = result
        self.calls_sent += 1
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "rmi", self.name, "call",
                    call_id=msg.call_id, object=stub.object_name, method=method,
                    dst=str(stub.address))
        # calls ride the TCP-like reliable channel (Java RMI semantics):
        # they complete or fail with a connection error — never silently
        # vanish mid-exchange on a healthy pair of hosts
        self.network.send(self.address, stub.address, msg, size=size,
                          reliable=True)
        self.sim.process(
            self._watchdog(msg.call_id, result, timeout or self.call_timeout),
            label=f"{self.name}:watchdog",
        )
        return result

    def oneway(
        self,
        stub: Stub,
        method: str,
        *args: Any,
        reliable: bool = False,
        size: int | None = None,
        **kwargs: Any,
    ) -> None:
        """Fire-and-forget invocation (the asynchronous data channel).

        ``reliable=True`` rides the TCP-like channel: still no reply and
        still lost if the peer is dead, but exempt from random in-transit
        loss — for fire-and-forget *control* broadcasts whose permanent
        loss would wedge a protocol (e.g. Application Register updates).

        ``size`` pre-supplies the envelope's measured byte size, letting a
        sender that can compute it incrementally (e.g. a memoized base plus
        the payload's ``nbytes``) skip the per-send size walk.  It must
        equal what :func:`~repro.util.serialization.measured_size` would
        report for the same envelope — callers own that invariant.
        """
        self.oneways_sent += 1
        tr = self.sim.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "rmi", self.name, "oneway",
                    object=stub.object_name, method=method, dst=str(stub.address))
        msg = OnewayMessage(stub.object_name, method, args, kwargs)
        self.network.send(self.address, stub.address, msg, size,
                          reliable, HOTPATH.oneway_fastpath)

    def prepare_oneway(
        self, stub: Stub, method: str, *args: Any, **kwargs: Any
    ) -> PreparedOneway:
        """Pre-build (and pre-measure) a constant oneway invocation.

        For emitters that fire the *same* invocation at high rate (the
        wheel-mode heartbeat), this hoists the envelope allocation and the
        payload size walk out of the per-send path.  The prepared message
        is immutable by convention; :meth:`send_prepared` re-sends it any
        number of times with byte-for-byte identical link charges.
        """
        msg = OnewayMessage(stub.object_name, method, args, kwargs)
        return PreparedOneway(stub, msg, measured_size(msg))

    def send_prepared(self, prepared: PreparedOneway, reliable: bool = False) -> None:
        """Fire-and-forget send of a :meth:`prepare_oneway` envelope."""
        self.oneways_sent += 1
        tr = self.sim.tracer
        if tr.enabled:
            msg = prepared.msg
            tr.emit(self.sim.now, "rmi", self.name, "oneway",
                    object=msg.object_name, method=msg.method,
                    dst=str(prepared.stub.address))
        self.network.send(self.address, prepared.stub.address, prepared.msg,
                          prepared.size, reliable, HOTPATH.oneway_fastpath)

    def _watchdog(self, call_id: int, result: Event, timeout: float):
        yield self.sim.timeout(timeout)
        if not result.triggered:
            self._pending.pop(call_id, None)
            tr = self.sim.tracer
            if tr.enabled:
                tr.emit(self.sim.now, "rmi", self.name, "error",
                        call_id=call_id, reason="timeout", timeout=timeout)
            result.fail(RemoteError(f"call #{call_id} timed out after {timeout}s"))

    # -- dispatcher -----------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            if self.endpoint.closed:
                # The host died before this process was interrupted (e.g. a
                # failure injected in the same timestep we booted): exit
                # cleanly instead of recv()-ing on a dead mailbox.
                return
            netmsg = yield self.endpoint.recv()
            payload = netmsg.payload
            if isinstance(payload, ReplyMessage):
                self._on_reply(payload)
            elif isinstance(payload, CallMessage):
                self._on_call(payload)
            elif isinstance(payload, OnewayMessage):
                self._on_oneway(payload)
            elif self.log is not None:  # pragma: no cover - diagnostics
                self.log.emit(self.sim.now, self.name, "rmi_unknown_message",
                              type=type(payload).__name__)

    def _on_reply(self, reply: ReplyMessage) -> None:
        event = self._pending.pop(reply.call_id, None)
        if event is None or event.triggered:
            return  # late reply after timeout: drop
        tr = self.sim.tracer
        if reply.ok:
            if tr.enabled:
                tr.emit(self.sim.now, "rmi", self.name, "reply",
                        call_id=reply.call_id, ok=True)
            event.succeed(reply.value)
        else:
            exc = reply.value
            if not isinstance(exc, BaseException):  # defensive
                exc = RemoteError(f"malformed error reply: {exc!r}")
            if tr.enabled:
                tr.emit(self.sim.now, "rmi", self.name, "error",
                        call_id=reply.call_id, reason="remote_exception",
                        error=repr(exc))
            event.fail(exc)

    def _resolve(self, object_name: str, method: str):
        fn = self._method_cache.get((object_name, method))
        if fn is not None:
            return fn
        obj = self._objects.get(object_name)
        if obj is None:
            raise RemoteError(f"no object {object_name!r} exported at {self.address}")
        if method not in remote_method_table(type(obj)):
            raise RemoteError(f"{object_name}.{method} is not a remote method")
        fn = getattr(obj, method)
        self._method_cache[(object_name, method)] = fn
        return fn

    def _on_call(self, call: CallMessage) -> None:
        try:
            fn = self._resolve(call.object_name, call.method)
            outcome = fn(*call.args, **call.kwargs)
        except RemoteError as exc:
            self._reply(call, ok=False, value=exc)
            return
        except Exception as exc:
            self._reply(call, ok=False, value=exc)
            return
        if hasattr(outcome, "send") and hasattr(outcome, "throw"):
            # Generator handler: run as a process on this host.
            self.host.spawn(self._run_generator_handler(call, outcome),
                            label=f"{self.name}:{call.method}")
        else:
            self.calls_served += 1
            self._reply(call, ok=True, value=outcome)

    def _run_generator_handler(self, call: CallMessage, gen) -> Any:
        try:
            value = yield from gen
        except Exception as exc:  # noqa: BLE001 - ship the error to the caller
            self._reply(call, ok=False, value=exc)
            return
        self.calls_served += 1
        self._reply(call, ok=True, value=value)

    def _reply(self, call: CallMessage, ok: bool, value: Any) -> None:
        if not self.host.online:
            return  # died while handling: the caller will time out
        self.network.send(
            self.address, call.reply_to,
            ReplyMessage(call.call_id, ok, value),
            reliable=True,
        )

    def _on_oneway(self, msg: OnewayMessage) -> None:
        try:
            fn = self._resolve(msg.object_name, msg.method)
            outcome = fn(*msg.args, **msg.kwargs)
        except Exception as exc:  # noqa: BLE001 - oneway errors never propagate
            self.oneway_errors += 1
            if self.log is not None:
                self.log.emit(self.sim.now, self.name, "rmi_oneway_error",
                              method=msg.method, error=repr(exc))
            return
        if outcome is not None and hasattr(outcome, "send") \
                and hasattr(outcome, "throw"):
            self.host.spawn(self._run_oneway_generator(outcome, msg.method),
                            label=f"{self.name}:{msg.method}")

    def _run_oneway_generator(self, gen, method: str):
        try:
            yield from gen
        except Exception as exc:  # noqa: BLE001
            self.oneway_errors += 1
            if self.log is not None:
                self.log.emit(self.sim.now, self.name, "rmi_oneway_error",
                              method=method, error=repr(exc))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RmiRuntime {self.name} at {self.address} objects={list(self._objects)}>"
