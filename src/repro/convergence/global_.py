"""Centralized global convergence tracking (the Spawner's array, §5.5).

The tracker holds one bit per task.  A task's bit is set by 1-messages and
cleared by 0-messages from whichever Daemon currently runs it; it is also
cleared whenever the task is **reassigned** after a failure (the restarted
task resumes from an older checkpoint, so its previous stability claim no
longer holds).  Global convergence = every bit set.
"""

from __future__ import annotations

__all__ = ["GlobalConvergenceTracker"]


class GlobalConvergenceTracker:
    """The Spawner's convergence array."""

    def __init__(self, num_tasks: int):
        if num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        self.num_tasks = num_tasks
        self.states = [False] * num_tasks
        self.messages_received = 0
        self.resets_on_reassign = 0

    def set_state(self, task_id: int, stable: bool) -> None:
        """Apply a 1/0 message from a Daemon."""
        self._check(task_id)
        self.messages_received += 1
        self.states[task_id] = bool(stable)

    def reset_task(self, task_id: int) -> None:
        """Clear a task's bit on reassignment after a failure."""
        self._check(task_id)
        if self.states[task_id]:
            self.resets_on_reassign += 1
        self.states[task_id] = False

    @property
    def converged(self) -> bool:
        return all(self.states)

    @property
    def stable_count(self) -> int:
        return sum(self.states)

    def _check(self, task_id: int) -> None:
        if not 0 <= task_id < self.num_tasks:
            raise ValueError(f"task_id {task_id} out of range [0, {self.num_tasks})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = "".join("1" if s else "0" for s in self.states)
        return f"<GlobalConvergenceTracker {bits}>"
