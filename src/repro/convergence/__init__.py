"""``repro.convergence`` — convergence detection (paper §5.5).

Local detection runs on each Daemon: a task is *locally stable* when the
relative distance between successive iterates stays below a threshold for a
window of consecutive iterations.  Global detection is centralized on the
Spawner: an array with one stable/unstable bit per task, updated by 1/0
messages from the Daemons; global convergence = all bits set.
"""

from repro.convergence.local import LocalConvergenceDetector
from repro.convergence.global_ import GlobalConvergenceTracker

__all__ = ["LocalConvergenceDetector", "GlobalConvergenceTracker"]
