"""Per-task local convergence detection.

Paper §5.5: "the convergence is commonly associated with the relative error
between the last two iterations" and "When a peer is in a local stable state
during a given number of iterations, it sends 1" — i.e. a threshold on the
update distance plus a stability window to ride out transient lulls (an
asynchronous iteration can look momentarily still while waiting for fresh
neighbour data).
"""

from __future__ import annotations

__all__ = ["LocalConvergenceDetector"]


class LocalConvergenceDetector:
    """Streaming detector over per-iteration update distances.

    ``update(distance)`` returns True exactly when the reported state flips
    (the moment a 1/0 message must be sent to the Spawner) — callers read
    the new state from :attr:`stable`.
    """

    def __init__(self, threshold: float, stability_window: int = 3):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        self.threshold = threshold
        self.stability_window = stability_window
        self.quiet_streak = 0
        self.stable = False
        self.flips = 0

    def update(self, distance: float) -> bool:
        """Feed one iteration's update distance; True when the state flips."""
        if distance < 0:
            raise ValueError("distance must be >= 0")
        if distance < self.threshold:
            self.quiet_streak += 1
        else:
            self.quiet_streak = 0
        new_state = self.quiet_streak >= self.stability_window
        flipped = new_state != self.stable
        if flipped:
            self.stable = new_state
            self.flips += 1
        return flipped

    def reset(self) -> None:
        """Forget history (used when a task restarts from a checkpoint)."""
        self.quiet_streak = 0
        self.stable = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LocalConvergenceDetector stable={self.stable} "
            f"streak={self.quiet_streak}/{self.stability_window}>"
        )
