"""Deterministic random-number management.

Every stochastic decision in the library (host speeds, link latencies, churn
schedules, the random Super-Peer pick during bootstrap, ...) draws from a
:class:`RngTree`: a hierarchy of independent ``numpy.random.Generator``
streams derived from one root seed.  Two runs with the same root seed make
exactly the same decisions, which is what lets the benchmark harness replay
the paper's experiments reproducibly.

The derivation is stable: ``tree.child("churn")`` always yields the same
stream for the same root seed, regardless of the order in which other
children were created.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngTree"]


def derive_seed(root_seed: int, *path: str | int) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a path of labels.

    Stable across processes and Python versions (uses SHA-256, not ``hash``).
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


class RngTree:
    """A node in a deterministic tree of random generators.

    Parameters
    ----------
    seed:
        Root seed for this node.
    path:
        Human-readable label path (used in ``repr`` and error messages).
    """

    __slots__ = ("seed", "path", "_gen")

    def __init__(self, seed: int, path: tuple[str | int, ...] = ()):
        self.seed = int(seed)
        self.path = path
        self._gen: np.random.Generator | None = None

    @property
    def generator(self) -> np.random.Generator:
        """The ``numpy`` generator for this node (created lazily)."""
        if self._gen is None:
            self._gen = np.random.default_rng(self.seed)
        return self._gen

    def child(self, *labels: str | int) -> "RngTree":
        """Return the child node reached by ``labels``.

        Children are independent of the parent's own draw state: deriving a
        child never consumes randomness from this node.
        """
        if not labels:
            raise ValueError("child() requires at least one label")
        return RngTree(derive_seed(self.seed, *labels), self.path + tuple(labels))

    # -- convenience draws -------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.generator.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def exponential(self, mean: float) -> float:
        return float(self.generator.exponential(mean))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffled(self, seq):
        """Return a new list with the elements of ``seq`` shuffled."""
        out = list(seq)
        self.generator.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngTree(seed={self.seed}, path={'/'.join(map(str, self.path))!r})"
