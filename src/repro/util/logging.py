"""Structured event logging for simulation runs.

The runtime appends :class:`LogRecord` entries (simulated timestamp, entity,
event kind, payload) to an :class:`EventLog`.  Tests assert protocol
behaviour against the log; the experiment harness mines it for telemetry
(useless iterations, detection delays, recovery counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["LogRecord", "EventLog"]


@dataclass(frozen=True)
class LogRecord:
    """One structured log entry."""

    time: float
    entity: str
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.4f}] {self.entity:<16} {self.kind:<24} {kv}"


class EventLog:
    """Append-only log with cheap filtering.

    ``max_records`` bounds memory for very long runs; when exceeded the
    oldest half is dropped (benchmarks only mine recent windows or counters,
    which are kept exactly).
    """

    def __init__(self, max_records: int = 2_000_000):
        self.records: list[LogRecord] = []
        self.max_records = max_records
        self.counters: dict[str, int] = {}
        self._subscribers: list[Callable[[LogRecord], None]] = []
        self.dropped = 0

    def emit(self, time: float, entity: str, kind: str, **detail: Any) -> LogRecord:
        rec = LogRecord(float(time), entity, kind, detail)
        self.records.append(rec)
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if len(self.records) > self.max_records:
            drop = len(self.records) // 2
            del self.records[:drop]
            self.dropped += drop
        for sub in self._subscribers:
            sub(rec)
        return rec

    def subscribe(self, fn: Callable[[LogRecord], None]) -> None:
        """Register a callback invoked on every emit (used by live probes)."""
        self._subscribers.append(fn)

    def count(self, kind: str) -> int:
        """Exact number of records of ``kind`` emitted over the whole run."""
        return self.counters.get(kind, 0)

    def select(
        self,
        kind: str | None = None,
        entity: str | None = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> list[LogRecord]:
        return [
            r
            for r in self.records
            if (kind is None or r.kind == kind)
            and (entity is None or r.entity == entity)
            and since <= r.time <= until
        ]

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
