"""Small online-statistics helpers used by monitors and the experiment
harness.

Kept dependency-light (plain Python + numpy) so they can be used from inside
tight simulation loops without surprising allocation costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["OnlineStats", "Histogram", "summarize"]


class OnlineStats:
    """Welford online mean/variance with min/max tracking.

    Numerically stable for long event streams (millions of samples), unlike
    the naive sum-of-squares formula.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new OnlineStats equal to the union of both streams."""
        out = OnlineStats()
        n = self.count + other.count
        if n == 0:
            return out
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * other.count / n
        out._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / n
        )
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineStats(n={self.count}, mean={self.mean:.4g}, std={self.std:.4g})"


@dataclass
class Histogram:
    """Fixed-bin histogram over ``[low, high)`` with under/overflow bins."""

    low: float
    high: float
    bins: int = 32
    counts: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValueError("high must exceed low")
        if self.bins < 1:
            raise ValueError("need at least one bin")
        if self.counts is None:
            self.counts = np.zeros(self.bins, dtype=np.int64)

    def add(self, x: float) -> None:
        if x < self.low:
            self.underflow += 1
            return
        if x >= self.high:
            self.overflow += 1
            return
        idx = int((x - self.low) / (self.high - self.low) * self.bins)
        self.counts[min(idx, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints (in-range samples only)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        inrange = int(self.counts.sum())
        if inrange == 0:
            return math.nan
        target = q * inrange
        cum = 0
        width = (self.high - self.low) / self.bins
        for i, c in enumerate(self.counts):
            cum += int(c)
            if cum >= target:
                return self.low + (i + 0.5) * width
        return self.high - 0.5 * width

    def edges(self) -> np.ndarray:
        return np.linspace(self.low, self.high, self.bins + 1)


def summarize(values) -> dict:
    """One-shot summary of an iterable of numbers."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"count": 0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
