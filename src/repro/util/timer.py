"""Wall-clock timing helper for the real (threaded) backend and benches."""

from __future__ import annotations

import time

__all__ = ["WallTimer"]


class WallTimer:
    """Context-manager stopwatch.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start

    def lap(self) -> float:
        """Seconds since ``__enter__`` without stopping the timer."""
        if self.start is None:
            raise RuntimeError("timer not started")
        return time.perf_counter() - self.start
