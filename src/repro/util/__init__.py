"""Cross-cutting utilities: seeded RNG trees, statistics, serialization
size-accounting, structured event logging and simple timers."""

from repro.util.rng import RngTree, derive_seed
from repro.util.stats import OnlineStats, Histogram, summarize
from repro.util.serialization import measured_size, clone_state
from repro.util.logging import EventLog, LogRecord
from repro.util.timer import WallTimer

__all__ = [
    "RngTree",
    "derive_seed",
    "OnlineStats",
    "Histogram",
    "summarize",
    "measured_size",
    "clone_state",
    "EventLog",
    "LogRecord",
    "WallTimer",
]
