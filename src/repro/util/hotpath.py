"""Process-wide hot-path switches and cache registry.

The perf-sensitive layers (decomposition memo in
:mod:`repro.numerics.splitting`, the message size-accounting fast path in
:mod:`repro.util.serialization`) read these flags at call time.  Everything
they gate is *bitwise-neutral*: enabling or disabling a flag never changes
simulated time, iteration counts or numerical results — only wall-clock
cost.  That invariant is what :mod:`benchmarks.bench_hotpath` and the
cache-correctness tests assert.

:func:`hotpath_disabled` is the cache-bypass lever: inside the context every
flag is off and every registered cache is cleared on entry *and* exit, so a
bypass run can never observe state built by a cached run (and vice versa).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

__all__ = ["HOTPATH", "HotpathFlags", "hotpath_disabled", "register_cache",
           "clear_caches"]


@dataclass
class HotpathFlags:
    """Mutable process-wide switches for the wall-clock fast paths."""

    #: memoize :class:`~repro.numerics.splitting.BlockDecomposition` builds
    #: (shared, immutable operators across tasks and recoveries)
    decomposition_cache: bool = True
    #: per-block cached CSR arrays / Jacobi diagonal / CG work vectors
    operator_cache: bool = True
    #: fast type-dispatched ``measured_size`` with per-instance memoization
    #: for frozen (immutable) dataclasses
    size_memo: bool = True
    #: collapse eligible oneway RMI invocations (no reply, no tracer, no
    #: fault interception) into a single pooled kernel callback that
    #: dispatches straight into the destination runtime — skipping the
    #: mailbox store and the dispatcher process resume entirely
    oneway_fastpath: bool = True
    #: route inner solves through the :class:`repro.compute.ComputePlane`:
    #: cohort registration, wall-clock-deferred direct solves flushed as
    #: one multi-RHS call, and per-cohort preallocated work pools.  The
    #: DES event flow (durations, send times, rng draws) is unchanged —
    #: only *when in wall-clock* the arithmetic runs.
    compute_batch: bool = True
    #: additionally allow *CG* solves to defer into lock-step batched
    #: cohort solves — only ever taken when the iteration duration is
    #: provably pinned to the ``min_iteration_time`` floor (duration
    #: independent of the iteration count), so simulated time cannot move
    compute_batch_cg: bool = True
    #: per-member memo of the last inner solve: identical (rhs, x0, tol,
    #: max_iter) requests — the "useless iteration" pattern, no fresh
    #: neighbour data — replay the previous result instead of re-solving
    solve_memo: bool = True
    #: zero-copy data plane: boundary payloads leave as frozen
    #: (``writeable=False``) views and checkpoint Backups freeze their
    #: snapshot instead of eagerly deep-copying it (clone-on-restore)
    zerocopy: bool = True

    def set_all(self, enabled: bool) -> None:
        self.decomposition_cache = enabled
        self.operator_cache = enabled
        self.size_memo = enabled
        self.oneway_fastpath = enabled
        self.compute_batch = enabled
        self.compute_batch_cg = enabled
        self.solve_memo = enabled
        self.zerocopy = enabled


#: The process-wide switch block.  Library code reads attributes at call
#: time, so flipping a flag takes effect immediately.
HOTPATH = HotpathFlags()

#: Clear-callbacks of every process-wide cache keyed by these flags.
_cache_clearers: list[Callable[[], None]] = []


def register_cache(clear: Callable[[], None]) -> Callable[[], None]:
    """Register a cache's ``clear`` callable; returns it unchanged."""
    _cache_clearers.append(clear)
    return clear


def clear_caches() -> None:
    """Drop every registered process-wide cache (decompositions, memos)."""
    for clear in _cache_clearers:
        clear()


@contextmanager
def hotpath_disabled():
    """Run with every hot-path flag off and all shared caches empty.

    This is the benchmark's cache-bypass arm and the test suite's isolation
    lever.  Caches are cleared again on exit so subsequent cached runs start
    cold too — keeping A/B comparisons symmetric.
    """
    saved = (HOTPATH.decomposition_cache, HOTPATH.operator_cache,
             HOTPATH.size_memo, HOTPATH.oneway_fastpath,
             HOTPATH.compute_batch, HOTPATH.compute_batch_cg,
             HOTPATH.solve_memo, HOTPATH.zerocopy)
    HOTPATH.set_all(False)
    clear_caches()
    try:
        yield HOTPATH
    finally:
        (HOTPATH.decomposition_cache, HOTPATH.operator_cache,
         HOTPATH.size_memo, HOTPATH.oneway_fastpath,
         HOTPATH.compute_batch, HOTPATH.compute_batch_cg,
         HOTPATH.solve_memo, HOTPATH.zerocopy) = saved
        clear_caches()
