"""Serialization helpers.

The simulator charges network transfers by *payload size*; this module
provides the size-accounting used by the RMI layer, plus deep-copy helpers
for checkpoint state (a Backup must be an immutable snapshot, not an alias of
the live task state — otherwise later iterations would silently corrupt old
checkpoints, breaking rollback).
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
from typing import Any

import numpy as np

__all__ = ["measured_size", "clone_state"]

# Fixed protocol overhead charged per message, in bytes.  Roughly a TCP/IP +
# RMI envelope; the exact constant only shifts latency curves uniformly.
ENVELOPE_BYTES = 256


def measured_size(obj: Any) -> int:
    """Best-effort serialized size of ``obj`` in bytes.

    NumPy arrays are charged at buffer size (what a real marshaller would
    ship) without actually pickling them — important because the simulator
    calls this on every message send.
    """
    size = ENVELOPE_BYTES
    size += _payload_size(obj, depth=0)
    return size


def _payload_size(obj: Any, depth: int) -> int:
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 96  # header
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        if depth > 6:  # deep structures: fall back to pickle below
            return _pickle_size(obj)
        return 16 + sum(_payload_size(x, depth + 1) for x in obj)
    if isinstance(obj, dict):
        if depth > 6:
            return _pickle_size(obj)
        return 16 + sum(
            _payload_size(k, depth + 1) + _payload_size(v, depth + 1)
            for k, v in obj.items()
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Message/stub dataclasses: traverse fields instead of pickling, so
        # numpy payloads inside calls are charged at buffer size.
        return 32 + sum(
            _payload_size(getattr(obj, f.name), depth + 1)
            for f in dataclasses.fields(obj)
        )
    # Objects exposing their own accounting (e.g. Backup) use it.
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return _pickle_size(obj)


def _pickle_size(obj: Any) -> int:
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 1024  # unpicklable odd object: charge a flat size


def clone_state(state: Any) -> Any:
    """Deep-copy task state for checkpointing.

    NumPy arrays are copied via ``np.copy`` (fast path); everything else via
    ``copy.deepcopy``.
    """
    if isinstance(state, np.ndarray):
        return state.copy()
    if isinstance(state, dict):
        return {k: clone_state(v) for k, v in state.items()}
    if isinstance(state, list):
        return [clone_state(v) for v in state]
    if isinstance(state, tuple):
        return tuple(clone_state(v) for v in state)
    return copy.deepcopy(state)
