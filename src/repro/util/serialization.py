"""Serialization helpers.

The simulator charges network transfers by *payload size*; this module
provides the size-accounting used by the RMI layer, plus deep-copy helpers
for checkpoint state (a Backup must be an immutable snapshot, not an alias of
the live task state — otherwise later iterations would silently corrupt old
checkpoints, breaking rollback).

``measured_size`` runs on **every** message send, so it has two
value-identical implementations:

* the legacy ``isinstance``-cascade walk (reference semantics, and the
  benchmark's cache-bypass arm);
* a fast path dispatching on exact types, caching ``dataclasses.fields``
  per class, and memoizing the computed payload size per *instance* for
  frozen (immutable) dataclasses — stubs, addresses and checkpoint Backups
  are measured once and re-sent many times.

The fast path is gated by :data:`repro.util.hotpath.HOTPATH.size_memo`; both
paths charge exactly the same bytes for the same payload, so simulated time
(link delays are a function of size) is unaffected by the switch.
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
from typing import Any

import numpy as np

from repro.util.hotpath import HOTPATH, register_cache

__all__ = ["measured_size", "clone_state", "prime_payload_cache",
           "memoized_payload_size", "NDARRAY_HEADER_BYTES", "freeze_state",
           "frozen_view"]

# Fixed protocol overhead charged per message, in bytes.  Roughly a TCP/IP +
# RMI envelope; the exact constant only shifts latency curves uniformly.
ENVELOPE_BYTES = 256

#: Per-ndarray marshalling overhead charged on top of ``nbytes`` (dtype
#: descriptor + shape/stride header, roughly what a real pickle frame
#: costs).  Senders that derive envelope sizes incrementally (e.g. the
#: boundary-exchange memo in :mod:`repro.p2p.daemon`) must add exactly
#: this constant per array — a drift test pins it to the measured charge.
NDARRAY_HEADER_BYTES = 96

#: instance attribute holding a frozen dataclass's memoized payload size
_SIZE_ATTR = "_measured_payload_cache"

# per-class metadata for the fast path: field-name tuple and frozen-ness
_fields_by_class: dict[type, tuple[str, ...]] = {}
_frozen_by_class: dict[type, bool] = {}
#: frozen dataclasses whose instances cannot hold the per-instance memo
#: (``__slots__`` without ``__dict__``): recorded on the first failed
#: plant so later walks skip both the memo probe and the raise/catch
_unmemoizable: set[type] = set()
register_cache(_fields_by_class.clear)
register_cache(_frozen_by_class.clear)
register_cache(_unmemoizable.clear)


def measured_size(obj: Any) -> int:
    """Best-effort serialized size of ``obj`` in bytes.

    NumPy arrays are charged at buffer size (what a real marshaller would
    ship) without actually pickling them — important because the simulator
    calls this on every message send.
    """
    if HOTPATH.size_memo:
        return ENVELOPE_BYTES + _payload_size_fast(obj, 0)
    return ENVELOPE_BYTES + _payload_size(obj, depth=0)


def _payload_size(obj: Any, depth: int) -> int:
    """Reference implementation: the original isinstance cascade."""
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + NDARRAY_HEADER_BYTES
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        if depth > 6:  # deep structures: fall back to pickle below
            return _pickle_size(obj)
        return 16 + sum(_payload_size(x, depth + 1) for x in obj)
    if isinstance(obj, dict):
        if depth > 6:
            return _pickle_size(obj)
        return 16 + sum(
            _payload_size(k, depth + 1) + _payload_size(v, depth + 1)
            for k, v in obj.items()
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Message/stub dataclasses: traverse fields instead of pickling, so
        # numpy payloads inside calls are charged at buffer size.
        return 32 + sum(
            _payload_size(getattr(obj, f.name), depth + 1)
            for f in dataclasses.fields(obj)
        )
    # Objects exposing their own accounting (e.g. Backup) use it.
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return _pickle_size(obj)


def _register_dataclass(cls: type) -> tuple[str, ...] | None:
    if not dataclasses.is_dataclass(cls):
        return None
    names = tuple(f.name for f in dataclasses.fields(cls))
    _fields_by_class[cls] = names
    _frozen_by_class[cls] = bool(cls.__dataclass_params__.frozen)
    return names


def _payload_size_fast(obj: Any, depth: int) -> int:
    """Exact-type dispatch, charging the same bytes as :func:`_payload_size`.

    Frozen dataclasses are memoized per instance (their fields cannot be
    rebound, and by convention their contents are immutable snapshots —
    stubs, addresses, Backups).  Memoized sizes are computed with a fresh
    depth budget; payloads never approach the depth-6 pickle fallback, so
    the charge is identical to the reference walk.
    """
    if obj is None:
        return 1
    cls = obj.__class__
    if cls is float or cls is int or cls is bool:
        return 8
    if cls is str:
        # UTF-8 length of an ASCII string is its length: skip the encode
        # (and its allocation) for the overwhelmingly common case
        if obj.isascii():
            return len(obj)
        return len(obj.encode("utf-8", errors="replace"))
    if cls is np.ndarray:
        return int(obj.nbytes) + NDARRAY_HEADER_BYTES
    # container walks accumulate in plain loops: a genexpr-under-sum costs
    # a generator object + one frame resume per element, which dominates
    # the walk for the small envelopes the message plane measures
    if cls is list or cls is tuple or cls is set or cls is frozenset:
        if depth > 6:
            return _pickle_size(obj)
        d = depth + 1
        size = 16
        for x in obj:
            size += _payload_size_fast(x, d)
        return size
    if cls is dict:
        if depth > 6:
            return _pickle_size(obj)
        d = depth + 1
        size = 16
        for k, v in obj.items():
            size += _payload_size_fast(k, d) + _payload_size_fast(v, d)
        return size
    names = _fields_by_class.get(cls)
    if names is None:
        names = _register_dataclass(cls)
    if names is not None:
        if _frozen_by_class[cls]:
            memoizable = cls not in _unmemoizable
            if memoizable:
                cached = getattr(obj, _SIZE_ATTR, None)
                if cached is not None:
                    return cached
            d = depth + 1
            size = 32
            for nm in names:
                size += _payload_size_fast(getattr(obj, nm), d)
            if memoizable:
                try:
                    object.__setattr__(obj, _SIZE_ATTR, size)
                except AttributeError:  # __slots__ dataclass: no memo
                    _unmemoizable.add(cls)
            return size
        d = depth + 1
        size = 32
        for nm in names:
            size += _payload_size_fast(getattr(obj, nm), d)
        return size
    # Rare/odd types (numpy scalars, subclasses, nbytes-carriers, pickle
    # fallback): defer to the reference cascade for identical charges.
    return _payload_size(obj, depth)


def prime_payload_cache(obj: Any) -> None:
    """Precompute a frozen dataclass's memoized payload size (optional).

    Lets long-lived immutable payloads (e.g. checkpoint Backups) pay the
    size walk at construction time instead of on the send path.  A no-op
    when the fast path is disabled.
    """
    if HOTPATH.size_memo:
        _payload_size_fast(obj, 0)


def memoized_payload_size(obj: Any) -> int | None:
    """The per-instance payload size planted by :func:`prime_payload_cache`.

    Senders that derive envelope sizes incrementally (base + nested payload)
    read the nested object's charge through this instead of re-walking it.
    ``None`` when no memo is planted (fast path off, or the object is not a
    primed frozen dataclass) — callers must then fall back to a full
    measurement.
    """
    return getattr(obj, _SIZE_ATTR, None)


def _pickle_size(obj: Any) -> int:
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 1024  # unpicklable odd object: charge a flat size


def freeze_state(state: Any) -> Any:
    """Mark every ndarray inside ``state`` read-only, in place.

    The zero-copy checkpoint path (:class:`repro.checkpoint.Backup` with
    ``HOTPATH.zerocopy``) freezes the snapshot it was handed instead of
    deep-copying it: ``dump_state`` already produced a private copy, so
    freezing turns accidental aliasing into a loud ``ValueError`` rather
    than paying a second full copy per checkpoint.  Returns ``state``.
    """
    if isinstance(state, np.ndarray):
        state.flags.writeable = False
        return state
    if isinstance(state, dict):
        for v in state.values():
            freeze_state(v)
        return state
    if isinstance(state, (list, tuple)):
        for v in state:
            freeze_state(v)
        return state
    return state


def frozen_view(a: np.ndarray) -> np.ndarray:
    """A read-only view of ``a`` (no data copy).

    The zero-copy boundary-exchange path ships these as message payloads:
    receivers only ever *read* boundary values, and any code path that
    tried to mutate one in place fails loudly instead of corrupting the
    sender's state.
    """
    v = a[:]
    v.flags.writeable = False
    return v


def clone_state(state: Any) -> Any:
    """Deep-copy task state for checkpointing.

    NumPy arrays are copied via ``np.copy`` (fast path); everything else via
    ``copy.deepcopy``.
    """
    if isinstance(state, np.ndarray):
        return state.copy()
    if isinstance(state, dict):
        return {k: clone_state(v) for k, v in state.items()}
    if isinstance(state, list):
        return [clone_state(v) for v in state]
    if isinstance(state, tuple):
        return tuple(clone_state(v) for v in state)
    return copy.deepcopy(state)
